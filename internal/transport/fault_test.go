package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/netem"
)

// faultPair builds a UDP endpoint pair with the sender wrapped in a
// FaultyEndpoint using the given default policy.
func faultPair(t *testing.T, def FaultPolicy) (f *FaultyEndpoint, dstAddr string, recv chan []byte) {
	t.Helper()
	recv = make(chan []byte, 4096)
	dst, err := Listen("127.0.0.1:0", func(data []byte, from net.Addr) {
		recv <- append([]byte(nil), data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := Listen("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	f = NewFaultyEndpoint(src, def, 1)
	t.Cleanup(func() { f.Close(); dst.Close() })
	return f, dst.LocalAddr(), recv
}

func drain(recv chan []byte, settle time.Duration) int {
	n := 0
	for {
		select {
		case <-recv:
			n++
		case <-time.After(settle):
			return n
		}
	}
}

func TestFaultPassthrough(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{})
	for i := 0; i < 20; i++ {
		if err := f.SendToAddr(dst, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(recv, 200*time.Millisecond); got != 20 {
		t.Errorf("delivered %d/20 with empty policy", got)
	}
	st := f.Stats()
	if st.Sent != 20 || st.Dropped != 0 || st.Blackholed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFaultDrop(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{Drop: 0.5})
	const n = 400
	for i := 0; i < n; i++ {
		if err := f.SendToAddr(dst, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	got := drain(recv, 300*time.Millisecond)
	st := f.Stats()
	if st.Dropped == 0 {
		t.Fatal("no injected drops at 50% loss")
	}
	if got+int(st.Dropped) != n {
		t.Errorf("delivered %d + dropped %d != sent %d", got, st.Dropped, n)
	}
	// 400 Bernoulli(0.5) trials stay within [120, 280] overwhelmingly.
	if st.Dropped < 120 || st.Dropped > 280 {
		t.Errorf("dropped %d of %d at p=0.5", st.Dropped, n)
	}
}

func TestFaultPacketLossCompounds(t *testing.T) {
	// A 180 KB frame fragments into 120 MTU packets: at 1% per-packet
	// loss it survives with p ≈ 0.3 — the paper's Fig. 11 effect. A tiny
	// message survives with p ≈ 0.99.
	f, dst, recv := faultPair(t, FaultPolicy{PacketLoss: 0.01})
	big := make([]byte, 180<<10)
	const n = 100
	for i := 0; i < n; i++ {
		if err := f.SendToAddr(dst, big); err != nil {
			t.Fatal(err)
		}
	}
	bigGot := drain(recv, 500*time.Millisecond)
	if bigGot > 70 {
		t.Errorf("large frames: %d/100 survived 1%% per-packet loss; want heavy compounding", bigGot)
	}
	for i := 0; i < n; i++ {
		if err := f.SendToAddr(dst, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if smallGot := drain(recv, 300*time.Millisecond); smallGot < 80 {
		t.Errorf("small frames: only %d/100 survived 1%% per-packet loss", smallGot)
	}
}

func TestFaultPartitionToggle(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{})
	f.Partition(dst)
	for i := 0; i < 10; i++ {
		if err := f.SendToAddr(dst, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(recv, 150*time.Millisecond); got != 0 {
		t.Errorf("%d messages crossed a partition", got)
	}
	if st := f.Stats(); st.Blackholed != 10 {
		t.Errorf("blackholed = %d, want 10", st.Blackholed)
	}
	f.Heal(dst)
	if err := f.SendToAddr(dst, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if got := drain(recv, 300*time.Millisecond); got != 1 {
		t.Errorf("healed link delivered %d, want 1", got)
	}
}

func TestFaultPartitionAll(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{})
	f.PartitionAll()
	f.SendToAddr(dst, []byte{1})
	if got := drain(recv, 150*time.Millisecond); got != 0 {
		t.Errorf("%d messages crossed PartitionAll", got)
	}
	f.HealAll()
	f.SendToAddr(dst, []byte{2})
	if got := drain(recv, 300*time.Millisecond); got != 1 {
		t.Errorf("after HealAll delivered %d, want 1", got)
	}
}

func TestFaultPerPeerPolicy(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{})
	other, err := Listen("127.0.0.1:0", func([]byte, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	// Only the other peer suffers loss; dst stays clean.
	f.SetPeerPolicy(other.LocalAddr(), FaultPolicy{Drop: 1})
	for i := 0; i < 10; i++ {
		f.SendToAddr(other.LocalAddr(), []byte{1})
		f.SendToAddr(dst, []byte{2})
	}
	if got := drain(recv, 300*time.Millisecond); got != 10 {
		t.Errorf("clean peer delivered %d/10", got)
	}
	if st := f.Stats(); st.Dropped != 10 {
		t.Errorf("dropped = %d, want 10 on the lossy peer", st.Dropped)
	}
	f.ClearPeerPolicy(other.LocalAddr())
	f.SendToAddr(other.LocalAddr(), []byte{1})
	if st := f.Stats(); st.Dropped != 10 {
		t.Errorf("dropped moved to %d after ClearPeerPolicy", st.Dropped)
	}
}

func TestFaultDuplicate(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{Duplicate: 1})
	for i := 0; i < 5; i++ {
		if err := f.SendToAddr(dst, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(recv, 300*time.Millisecond); got != 10 {
		t.Errorf("delivered %d, want 10 (every message duplicated)", got)
	}
	if st := f.Stats(); st.Duplicated != 5 {
		t.Errorf("duplicated = %d, want 5", st.Duplicated)
	}
}

func TestFaultDelay(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{Delay: 150 * time.Millisecond})
	start := time.Now()
	if err := f.SendToAddr(dst, []byte{1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recv:
		if since := time.Since(start); since < 100*time.Millisecond {
			t.Errorf("delayed message arrived after %v, want ≥ ~150ms", since)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed message never arrived")
	}
}

func TestFaultCloseCancelsDelayed(t *testing.T) {
	f, dst, _ := faultPair(t, FaultPolicy{Delay: 10 * time.Second})
	for i := 0; i < 50; i++ {
		if err := f.SendToAddr(dst, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- f.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on in-flight delayed sends")
	}
	if err := f.SendToAddr(dst, []byte{1}); err != ErrClosed {
		t.Errorf("send after close: %v, want ErrClosed", err)
	}
}

func TestFaultConcurrentSenders(t *testing.T) {
	f, dst, recv := faultPair(t, FaultPolicy{Drop: 0.2, Jitter: time.Millisecond})
	var wg sync.WaitGroup
	const senders, per = 8, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := f.SendToAddr(dst, []byte{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got := drain(recv, 500*time.Millisecond)
	st := f.Stats()
	if st.Sent != senders*per {
		t.Errorf("sent = %d, want %d", st.Sent, senders*per)
	}
	if got+int(st.Dropped) != senders*per {
		t.Errorf("delivered %d + dropped %d != %d", got, st.Dropped, senders*per)
	}
}

func TestFaultPolicyFromLink(t *testing.T) {
	p := PolicyFromLink(netem.CloudWANTransit())
	if p.PacketLoss != 0.004 {
		t.Errorf("PacketLoss = %v", p.PacketLoss)
	}
	if p.Delay != 7500*time.Microsecond {
		t.Errorf("Delay = %v, want RTT/2", p.Delay)
	}
	if err := (FaultPolicy{Drop: 1.5}).Validate(); err == nil {
		t.Error("invalid drop accepted")
	}
	if err := (FaultPolicy{Duplicate: -0.1}).Validate(); err == nil {
		t.Error("invalid duplicate accepted")
	}
	if err := (FaultPolicy{Delay: -time.Second}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
}

// TestFaultEndpointInterface pins the wrapper to the Endpoint contract.
func TestFaultEndpointInterface(t *testing.T) {
	var _ Endpoint = (*FaultyEndpoint)(nil)
}
