package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPConn is a framed, connection-oriented message endpoint: the
// "improved network protocol" alternative the paper's A.1.2 suggests in
// place of raw UDP. Messages are length-prefixed (u32 big-endian) on
// persistent connections; outbound connections are dialed on demand,
// pooled per destination, and re-dialed once after a write failure.
// Unlike the UDP endpoint, delivery is reliable and ordered per peer —
// losses become latency instead of missing frames.
type TCPConn struct {
	ln      net.Listener
	handler Handler

	mu      sync.Mutex
	peers   map[string]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

type tcpPeer struct {
	mu   sync.Mutex
	conn net.Conn
}

// tcpDialTimeout bounds on-demand connection establishment.
const tcpDialTimeout = 3 * time.Second

// ListenTCP binds a framed TCP endpoint on addr and delivers inbound
// messages to handler.
func ListenTCP(addr string, handler Handler) (*TCPConn, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp %s: %w", addr, err)
	}
	c := &TCPConn{
		ln:      ln,
		handler: handler,
		peers:   make(map[string]*tcpPeer),
		inbound: make(map[net.Conn]struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// LocalAddr implements Endpoint.
func (c *TCPConn) LocalAddr() string { return c.ln.Addr().String() }

// Close implements Endpoint.
func (c *TCPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	peers := make([]*tcpPeer, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	inbound := make([]net.Conn, 0, len(c.inbound))
	for conn := range c.inbound {
		inbound = append(inbound, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	for _, conn := range inbound {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

func (c *TCPConn) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.inbound[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(conn)
	}
}

func (c *TCPConn) readLoop(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.inbound, conn)
		c.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 1<<20)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxMessage {
			return // corrupt stream; drop the connection
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return
		}
		c.handler(data, conn.RemoteAddr())
	}
}

// SendToAddr implements Endpoint: it frames data onto a pooled connection
// to addr, re-dialing once if the cached connection has gone stale.
func (c *TCPConn) SendToAddr(addr string, data []byte) error {
	if len(data) > maxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	peer, ok := c.peers[addr]
	if !ok {
		peer = &tcpPeer{}
		c.peers[addr] = peer
	}
	c.mu.Unlock()

	peer.mu.Lock()
	defer peer.mu.Unlock()
	if err := peer.writeLocked(addr, data); err != nil {
		// One reconnect attempt: the peer may have restarted.
		peer.resetLocked()
		if err := peer.writeLocked(addr, data); err != nil {
			return err
		}
	}
	return nil
}

func (p *tcpPeer) resetLocked() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

func (p *tcpPeer) writeLocked(addr string, data []byte) error {
	if p.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
		if err != nil {
			return fmt.Errorf("transport: dial tcp %s: %w", addr, err)
		}
		p.conn = conn
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := p.conn.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("transport: write to %s: %w", addr, err)
	}
	if _, err := p.conn.Write(data); err != nil {
		return fmt.Errorf("transport: write to %s: %w", addr, err)
	}
	return nil
}
