package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

// TCPOptions tune the failure behaviour of the framed TCP endpoint. The
// zero value of any field selects its default.
type TCPOptions struct {
	// DialTimeout bounds on-demand connection establishment (default 3 s).
	DialTimeout time.Duration
	// WriteTimeout bounds each framed write: a send to a blackholed peer
	// (accepting but not draining, or silently partitioned) fails after
	// this long instead of blocking on a full socket buffer (default 5 s).
	WriteTimeout time.Duration
	// Attempts is the total number of dial+write attempts per message,
	// including the first (default 3). Between attempts the sender backs
	// off exponentially with jitter.
	Attempts int
	// Backoff is the base delay before the second attempt; it doubles per
	// attempt up to MaxBackoff, each with up to 50% added jitter
	// (default 50 ms).
	Backoff time.Duration
	// MaxBackoff caps the per-attempt backoff (default 1 s).
	MaxBackoff time.Duration
}

// withDefaults fills unset fields.
func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	return o
}

// TCPConn is a framed, connection-oriented message endpoint: the
// "improved network protocol" alternative the paper's A.1.2 suggests in
// place of raw UDP. Messages are length-prefixed (u32 big-endian) on
// persistent connections; outbound connections are dialed on demand,
// pooled per destination, and re-established under a bounded
// exponential-backoff retry budget when a write or dial fails. Every
// write carries a deadline, so a blackholed peer costs bounded latency
// per message instead of wedging senders. Unlike the UDP endpoint,
// delivery is reliable and ordered per peer — losses become latency
// instead of missing frames.
type TCPConn struct {
	ln      net.Listener
	handler Handler
	opts    TCPOptions

	mu      sync.Mutex
	peers   map[string]*tcpPeer
	inbound map[net.Conn]struct{}
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup

	readPool wire.BufPool // per-frame receive buffers, released after each handler call
}

type tcpPeer struct {
	mu     sync.Mutex
	conn   net.Conn
	probe  liveProbe // pre-write FIN/RST detector for conn
	lenBuf [4]byte   // length-prefix scratch, reused per write
	vec    [2][]byte // scatter-gather backing for writev, reused per write
	nb     net.Buffers
}

// ListenTCP binds a framed TCP endpoint on addr with default options and
// delivers inbound messages to handler.
func ListenTCP(addr string, handler Handler) (*TCPConn, error) {
	return ListenTCPOpts(addr, handler, TCPOptions{})
}

// ListenTCPOpts is ListenTCP with explicit failure-behaviour options.
func ListenTCPOpts(addr string, handler Handler, opts TCPOptions) (*TCPConn, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp %s: %w", addr, err)
	}
	c := &TCPConn{
		ln:      ln,
		handler: handler,
		opts:    opts.withDefaults(),
		peers:   make(map[string]*tcpPeer),
		inbound: make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// LocalAddr implements Endpoint.
func (c *TCPConn) LocalAddr() string { return c.ln.Addr().String() }

// Close implements Endpoint. It also aborts senders waiting in a retry
// backoff.
func (c *TCPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	peers := make([]*tcpPeer, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	inbound := make([]net.Conn, 0, len(c.inbound))
	for conn := range c.inbound {
		inbound = append(inbound, conn)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, p := range peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
	}
	for _, conn := range inbound {
		conn.Close()
	}
	c.wg.Wait()
	return err
}

func (c *TCPConn) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.inbound[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(conn)
	}
}

func (c *TCPConn) readLoop(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.inbound, conn)
		c.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 1<<20)
	var lenBuf [4]byte
	from := conn.RemoteAddr()
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxMessage {
			return // corrupt stream; drop the connection
		}
		// Pooled per-frame buffer, recycled as soon as the handler
		// returns — the handler only borrows it (see Handler).
		data := c.readPool.Get(int(n))[:n]
		if _, err := io.ReadFull(r, data); err != nil {
			c.readPool.Put(data)
			return
		}
		c.handler(data, from)
		c.readPool.Put(data)
	}
}

// SendToAddr implements Endpoint: it frames data onto a pooled connection
// to addr under the endpoint's retry budget — each attempt dials (if
// needed) and writes under a deadline; failed attempts invalidate the
// pooled connection and back off exponentially with jitter before the
// next. Returns the last attempt's error when the budget is exhausted.
func (c *TCPConn) SendToAddr(addr string, data []byte) error {
	if len(data) > maxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	peer, ok := c.peers[addr]
	if !ok {
		peer = &tcpPeer{}
		c.peers[addr] = peer
	}
	c.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < c.opts.Attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleepBackoff(attempt); err != nil {
				return err
			}
		}
		conn, err := c.peerConn(peer, addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.writeFrame(peer, conn, addr, data); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// sleepBackoff waits the exponential backoff before the given attempt
// (1-based for the first retry), aborting when the endpoint closes.
func (c *TCPConn) sleepBackoff(attempt int) error {
	d := c.opts.Backoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	// Up to 50% jitter decorrelates retry storms across senders.
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.done:
		return ErrClosed
	case <-t.C:
		return nil
	}
}

// peerConn returns the pooled connection to addr, dialing one if none is
// cached. The dial happens outside the peer's write lock so a peer stuck
// in connection establishment does not wedge senders already holding a
// healthy connection, and outside the endpoint lock so one slow peer
// never blocks traffic to others.
func (c *TCPConn) peerConn(p *tcpPeer, addr string) (net.Conn, error) {
	p.mu.Lock()
	if p.conn != nil {
		conn := p.conn
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp %s: %w", addr, err)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		conn.Close()
		return nil, ErrClosed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		// A concurrent sender won the dial race; use its connection.
		conn.Close()
		return p.conn, nil
	}
	p.conn = conn
	p.probe.init(conn)
	return conn, nil
}

// writeFrame writes one length-prefixed message under the write deadline,
// serialized per peer so frames never interleave. A failed or expired
// write invalidates the pooled connection (the stream may hold a partial
// frame) so the next attempt re-dials.
func (c *TCPConn) writeFrame(p *tcpPeer, conn net.Conn, addr string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != conn {
		// Another sender already invalidated this connection.
		return fmt.Errorf("transport: connection to %s reset", addr)
	}
	// A freshly restarted peer leaves a dead stream in the pool; the old
	// code caught it by splitting prefix and payload into two writes so
	// the RST could fail the second. With a single writev that signal is
	// gone, so probe the socket for a pending FIN/RST first — one
	// non-blocking syscall, no allocation (see liveProbe).
	if !p.probe.alive() {
		conn.Close()
		p.conn = nil
		return fmt.Errorf("transport: connection to %s reset by peer", addr)
	}
	binary.BigEndian.PutUint32(p.lenBuf[:], uint32(len(data)))
	conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	// One writev for prefix + payload: a single syscall, no
	// concatenation copy, and frames stay intact on the wire.
	p.vec[0], p.vec[1] = p.lenBuf[:], data
	p.nb = net.Buffers(p.vec[:])
	_, err := p.nb.WriteTo(conn)
	p.vec[0], p.vec[1] = nil, nil // drop the payload ref; callers reuse their buffer
	p.nb = nil
	if err != nil {
		conn.Close()
		p.conn = nil
		return fmt.Errorf("transport: write to %s: %w", addr, err)
	}
	conn.SetWriteDeadline(time.Time{})
	return nil
}
