package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := New(1)
	var at Time
	e.At(5*time.Millisecond, func() {
		e.After(7*time.Millisecond, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 12*time.Millisecond {
		t.Errorf("After fired at %v, want 12ms", at)
	}
}

func TestPastClampedToNow(t *testing.T) {
	e := New(1)
	fired := false
	e.At(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { fired = true }) // in the past
	})
	e.RunAll()
	if !fired {
		t.Error("past-scheduled event never fired")
	}
	if e.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want 10ms (past event must not rewind time)", e.Now())
	}
}

func TestNegativeAfterClamped(t *testing.T) {
	e := New(1)
	fired := false
	e.After(-5*time.Second, func() { fired = true })
	e.RunAll()
	if !fired || e.Now() != 0 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(time.Millisecond, func() { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	e.RunAll()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestRunHorizon(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, d := range []Time{5 * time.Millisecond, 15 * time.Millisecond, 25 * time.Millisecond} {
		d := d
		e.At(d, func() { fired = append(fired, d) })
	}
	e.Run(20 * time.Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("Now = %v, want horizon 20ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run(time.Second)
	if len(fired) != 3 {
		t.Errorf("event after horizon never fired on later Run")
	}
}

func TestRunAdvancesToHorizonWhenEmpty(t *testing.T) {
	e := New(1)
	e.Run(time.Second)
	if e.Now() != time.Second {
		t.Errorf("Now = %v, want 1s", e.Now())
	}
}

func TestDispatchedCount(t *testing.T) {
	e := New(1)
	for i := 0; i < 5; i++ {
		e.At(Time(i)*time.Millisecond, func() {})
	}
	ev := e.At(time.Millisecond, func() {})
	ev.Cancel()
	e.RunAll()
	if e.Dispatched() != 5 {
		t.Errorf("Dispatched = %d, want 5 (cancelled events don't count)", e.Dispatched())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var draws []int64
		var tick func()
		tick = func() {
			draws = append(draws, e.Rand().Int63n(1000))
			if len(draws) < 20 {
				e.After(time.Duration(e.Rand().Intn(10)+1)*time.Millisecond, tick)
			}
		}
		e.After(0, tick)
		e.RunAll()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different event/draw sequences")
		}
	}
}

// Property: for any batch of random schedule times, dispatch order is the
// sorted order (stable for ties).
func TestDispatchOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(1)
		n := 50
		times := make([]Time, n)
		var got []int
		for i := 0; i < n; i++ {
			times[i] = Time(rng.Intn(20)) * time.Millisecond
			i := i
			e.At(times[i], func() { got = append(got, i) })
		}
		e.RunAll()
		if len(got) != n {
			return false
		}
		for k := 1; k < n; k++ {
			ta, tb := times[got[k-1]], times[got[k]]
			if ta > tb {
				return false
			}
			if ta == tb && got[k-1] > got[k] {
				return false // FIFO violated among ties
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: virtual time never decreases across dispatches.
func TestMonotonicTimeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New(seed)
		ok := true
		last := Time(0)
		var spawn func()
		spawn = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if e.Dispatched() < 100 {
				e.After(Time(rng.Intn(5))*time.Millisecond, spawn)
			}
		}
		for i := 0; i < 5; i++ {
			e.At(Time(rng.Intn(10))*time.Millisecond, spawn)
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	e := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%100)*time.Microsecond, func() {})
		if i%1024 == 0 {
			e.RunAll()
		}
	}
	e.RunAll()
}
