// Package sim provides the deterministic discrete-event simulation engine
// that drives the experiment testbed. Virtual time advances only when the
// engine dispatches the next scheduled event, so a five-minute experiment
// run (the paper's duration) executes in milliseconds and two runs with
// the same seed produce identical results.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps causality stable across runs — the property every experiment
// in internal/experiments relies on.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is virtual time since the start of the run.
type Time = time.Duration

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel was called.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the simulation world runs entirely inside event
// callbacks on one goroutine.
type Engine struct {
	now        Time
	queue      eventHeap
	seq        uint64
	rng        *rand.Rand
	dispatched uint64
}

// New returns an engine whose randomness derives from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded PRNG. All model randomness (loss,
// jitter, noise) must flow from here to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Dispatched returns the number of events executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// At schedules fn at absolute virtual time t. Times in the past are
// clamped to Now (the event fires after currently pending events at Now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn d after the current time. Negative d is clamped to 0.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step dispatches the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.dispatched++
		ev.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty or the next event lies
// beyond the until horizon. Afterwards Now() is min(until, last event
// time) — it advances to until only if the queue drained earlier events.
func (e *Engine) Run(until Time) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll dispatches every remaining event.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
