package experiments

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/core"
)

// AblationPoint is one parameter setting's measured outcome.
type AblationPoint struct {
	Param   string
	Value   time.Duration
	ValueN  int // for integer-valued ablations (queue capacity)
	Clients int
	Summary SummaryDigest
}

// SummaryDigest carries the ablation-relevant metrics.
type SummaryDigest struct {
	FPSPerClient  float64
	E2EMeanMS     float64
	E2EP95MS      float64
	SuccessRate   float64
	SiftMemBytes  int64
	DropThreshold uint64
	DropOverflow  uint64
	DropTimeout   uint64
}

func digest(pt RunPoint) SummaryDigest {
	s := pt.Summary
	return SummaryDigest{
		FPSPerClient:  s.FPSPerClient,
		E2EMeanMS:     float64(s.E2EMean) / float64(time.Millisecond),
		E2EP95MS:      float64(s.E2EP95) / float64(time.Millisecond),
		SuccessRate:   s.SuccessRate,
		SiftMemBytes:  pt.Services["sift"].MemBytes,
		DropThreshold: s.Drops["threshold"],
		DropOverflow:  s.Drops["overflow"],
		DropTimeout:   s.Drops["timeout"],
	}
}

// AblationThreshold sweeps the scAtteR++ sidecar latency threshold at
// 4 clients on E1: the knob trades delivered frame rate against bounded
// queueing delay (the paper fixes it at the 100 ms XR budget).
func AblationThreshold(duration time.Duration) ([]AblationPoint, Report) {
	thresholds := []time.Duration{
		25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		200 * time.Millisecond, 400 * time.Millisecond,
	}
	var pts []AblationPoint
	t := Table{
		Title:  "scAtteR++ on E1, 4 clients",
		Header: []string{"threshold", "fps/client", "e2e(ms)", "p95(ms)", "success", "thresh-drops"},
	}
	for _, th := range thresholds {
		pt := Run(RunSpec{
			Name: "threshold", Mode: core.ModeScatterPP, Placement: ConfigC1,
			Clients: 4, Duration: duration, Seed: 1500,
			Options: core.Options{Threshold: th},
		})
		ap := AblationPoint{Param: "threshold", Value: th, Clients: 4, Summary: digest(pt)}
		pts = append(pts, ap)
		t.Rows = append(t.Rows, []string{
			th.String(), f1(ap.Summary.FPSPerClient), f1(ap.Summary.E2EMeanMS),
			f1(ap.Summary.E2EP95MS), pct(ap.Summary.SuccessRate),
			fmt.Sprintf("%d", ap.Summary.DropThreshold),
		})
	}
	r := Report{
		ID:    "ablation-threshold",
		Title: "Ablation: sidecar latency threshold",
		Notes: `A tighter threshold bounds end-to-end latency but sheds more frames;
		a looser one converts drops into queueing delay. The paper's 100 ms
		sits at the XR tolerable-latency budget.`,
		Tables: []Table{t},
	}
	return pts, r
}

// AblationQueueCap sweeps the sidecar queue capacity: small queues shed
// load as overflow before the threshold filter ever sees it.
func AblationQueueCap(duration time.Duration) ([]AblationPoint, Report) {
	caps := []int{2, 8, 64, 256}
	var pts []AblationPoint
	t := Table{
		Title:  "scAtteR++ on E1, 4 clients, threshold 100ms",
		Header: []string{"queue-cap", "fps/client", "e2e(ms)", "overflow-drops", "thresh-drops"},
	}
	for _, c := range caps {
		pt := Run(RunSpec{
			Name: "queuecap", Mode: core.ModeScatterPP, Placement: ConfigC1,
			Clients: 4, Duration: duration, Seed: 1510,
			Options: core.Options{QueueCap: c},
		})
		ap := AblationPoint{Param: "queuecap", ValueN: c, Clients: 4, Summary: digest(pt)}
		pts = append(pts, ap)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", c), f1(ap.Summary.FPSPerClient), f1(ap.Summary.E2EMeanMS),
			fmt.Sprintf("%d", ap.Summary.DropOverflow), fmt.Sprintf("%d", ap.Summary.DropThreshold),
		})
	}
	r := Report{
		ID:    "ablation-queuecap",
		Title: "Ablation: sidecar queue capacity",
		Notes: `Tiny queues overflow before the latency filter can act (more drops,
		lower latency); beyond a few tens of slots the threshold dominates and
		capacity stops mattering.`,
		Tables: []Table{t},
	}
	return pts, r
}

// AblationFetchTimeout sweeps how long scAtteR's matching busy-waits for
// sift's state: the paper's dependency loop is most destructive when
// matching blocks long on fetches that will never arrive.
func AblationFetchTimeout(duration time.Duration) ([]AblationPoint, Report) {
	timeouts := []time.Duration{
		10 * time.Millisecond, 30 * time.Millisecond,
		50 * time.Millisecond, 100 * time.Millisecond,
	}
	var pts []AblationPoint
	t := Table{
		Title:  "scAtteR on E1, 4 clients",
		Header: []string{"fetch-timeout", "fps/client", "success", "timeout-drops"},
	}
	for _, to := range timeouts {
		pt := Run(RunSpec{
			Name: "fetchtimeout", Mode: core.ModeScatter, Placement: ConfigC1,
			Clients: 4, Duration: duration, Seed: 1520,
			Options: core.Options{FetchTimeout: to},
		})
		ap := AblationPoint{Param: "fetchtimeout", Value: to, Clients: 4, Summary: digest(pt)}
		pts = append(pts, ap)
		t.Rows = append(t.Rows, []string{
			to.String(), f1(ap.Summary.FPSPerClient), pct(ap.Summary.SuccessRate),
			fmt.Sprintf("%d", ap.Summary.DropTimeout),
		})
	}
	r := Report{
		ID:    "ablation-fetchtimeout",
		Title: "Ablation: matching's state-fetch timeout (scAtteR)",
		Notes: `Long waits amplify the dependency loop: every failed fetch pins
		matching (and drops its ingress) for the full timeout. Short timeouts
		waste fewer matching-cycles per miss and sustain more throughput.`,
		Tables: []Table{t},
	}
	return pts, r
}

// AblationStateTimeout sweeps sift's state retention: longer retention
// costs memory (the paper's memory-constrained-edge concern) without
// buying success once matching's own timeout has long expired.
func AblationStateTimeout(duration time.Duration) ([]AblationPoint, Report) {
	timeouts := []time.Duration{
		250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 4 * time.Second,
	}
	var pts []AblationPoint
	t := Table{
		Title:  "scAtteR on E1, 4 clients",
		Header: []string{"state-timeout", "fps/client", "success", "sift-mem(GB)"},
	}
	for _, to := range timeouts {
		pt := Run(RunSpec{
			Name: "statetimeout", Mode: core.ModeScatter, Placement: ConfigC1,
			Clients: 4, Duration: duration, Seed: 1530,
			Options: core.Options{StateTimeout: to},
		})
		ap := AblationPoint{Param: "statetimeout", Value: to, Clients: 4, Summary: digest(pt)}
		pts = append(pts, ap)
		t.Rows = append(t.Rows, []string{
			to.String(), f1(ap.Summary.FPSPerClient), pct(ap.Summary.SuccessRate),
			gb(ap.Summary.SiftMemBytes),
		})
	}
	r := Report{
		ID:    "ablation-statetimeout",
		Title: "Ablation: sift state retention (scAtteR)",
		Notes: `Retention far beyond matching's fetch window only accumulates dead
		state in memory — the side-effect the paper flags for memory-
		constrained edge hardware.`,
		Tables: []Table{t},
	}
	return pts, r
}

// FastExtractorProfiles returns the calibration with the detection stage
// replaced by a faster extractor (the paper's §5 "substituting SIFT with
// [a faster model]" discussion): roughly 2.3x faster detection, measured
// against this repository's ORB implementation vs its SIFT.
func FastExtractorProfiles() core.Profiles {
	p := core.DefaultProfiles()
	p[1].CPUTime = 2 * time.Millisecond // sift step
	p[1].GPUTime = 4 * time.Millisecond
	return p
}

// AblationFastModel compares the default SIFT-calibrated pipeline to the
// faster-extractor calibration across 1-10 clients (scAtteR++ on E1):
// the saturation point shifts right, but without the horizontally
// scalable design the same collapse eventually appears — the paper's §5
// argument.
func AblationFastModel(duration time.Duration) ([]AblationPoint, Report) {
	fast := FastExtractorProfiles()
	variants := []struct {
		label    string
		profiles *core.Profiles
	}{
		{"sift", nil},
		{"fast", &fast},
	}
	var pts []AblationPoint
	t := Table{
		Title:  "scAtteR++ on E1, clients 1-10",
		Header: []string{"extractor", "clients", "fps/client", "success"},
	}
	for _, v := range variants {
		for _, n := range []int{1, 2, 4, 6, 8, 10} {
			pt := Run(RunSpec{
				Name: v.label, Mode: core.ModeScatterPP, Placement: ConfigC1,
				Clients: n, Duration: duration, Seed: 1540 + int64(n),
				Profiles: v.profiles,
			})
			ap := AblationPoint{Param: "extractor-" + v.label, ValueN: n, Clients: n, Summary: digest(pt)}
			pts = append(pts, ap)
			t.Rows = append(t.Rows, []string{
				v.label, fmt.Sprintf("%d", n),
				f1(ap.Summary.FPSPerClient), pct(ap.Summary.SuccessRate),
			})
		}
	}
	r := Report{
		ID:    "ablation-fastmodel",
		Title: "Ablation: faster feature extractor (paper §5)",
		Notes: `A faster detection model shifts the saturation point to more
		clients but the architecture still saturates — model optimization is
		no substitute for a horizontally scalable design.`,
		Tables: []Table{t},
	}
	return pts, r
}

// Ablations runs the full ablation suite.
func Ablations(duration time.Duration) Report {
	if duration <= 0 {
		duration = DefaultDuration
	}
	_, r1 := AblationThreshold(duration)
	_, r2 := AblationQueueCap(duration)
	_, r3 := AblationFetchTimeout(duration)
	_, r4 := AblationStateTimeout(duration)
	_, r5 := AblationFastModel(duration)
	combined := Report{
		ID:    "ablations",
		Title: "Design-choice ablations (threshold, queue, fetch/state timeouts, extractor)",
	}
	for _, r := range []Report{r1, r2, r3, r4, r5} {
		t := r.Tables[0]
		t.Title = r.Title + " — " + t.Title
		combined.Tables = append(combined.Tables, t)
	}
	return combined
}
