package experiments

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/netem"
	"github.com/edge-mar/scatter/internal/wire"
)

// namedConfig pairs a paper label with a placement builder.
type namedConfig struct {
	name  string
	build func(w *World) core.Placement
}

func edgeConfigs() []namedConfig {
	return []namedConfig{
		{"Edge1 (E1)", ConfigC1},
		{"Edge2 (E2)", ConfigC2},
		{"[E1,E1,E2,E2,E2]", ConfigC12},
		{"[E2,E2,E1,E1,E1]", ConfigC21},
	}
}

// sweep runs a config over a range of client counts.
func sweep(cfg namedConfig, mode core.Mode, clients []int, duration time.Duration, seed int64) []RunPoint {
	pts := make([]RunPoint, 0, len(clients))
	for _, n := range clients {
		pts = append(pts, Run(RunSpec{
			Name:      cfg.name,
			Mode:      mode,
			Placement: cfg.build,
			Clients:   n,
			Duration:  duration,
			Seed:      seed + int64(n),
		}))
	}
	return pts
}

func clientRange(max int) []int {
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// qosTable renders the standard QoS rows for a set of points.
func qosTable(title string, pts []RunPoint) Table {
	t := Table{
		Title:  title,
		Header: []string{"config", "clients", "fps/client", "e2e(ms)", "svc-lat(ms)", "success", "jitter(ms)"},
	}
	for _, pt := range pts {
		s := pt.Summary
		t.Rows = append(t.Rows, []string{
			pt.Config, fmt.Sprintf("%d", pt.Clients), f1(s.FPSPerClient),
			fms(s.E2EMean), fms(s.ServiceLatMean), pct(s.SuccessRate), fms(s.JitterMean),
		})
	}
	return t
}

// resourceTable renders per-service memory/CPU/GPU rows.
func resourceTable(title string, pts []RunPoint) Table {
	t := Table{
		Title:  title,
		Header: []string{"config", "clients", "service", "mem(GB)", "cpu", "gpu"},
	}
	for _, pt := range pts {
		for _, svc := range ServiceNames() {
			u := pt.Services[svc]
			t.Rows = append(t.Rows, []string{
				pt.Config, fmt.Sprintf("%d", pt.Clients), svc,
				gb(u.MemBytes), pct(u.CPUPct), pct(u.GPUPct),
			})
		}
	}
	return t
}

// Fig2 reproduces the baseline edge characterization: scAtteR QoS and
// per-service hardware utilization over C1/C2/C12/C21 with 1–4 clients.
func Fig2(duration time.Duration) ([]RunPoint, Report) {
	var pts []RunPoint
	for _, cfg := range edgeConfigs() {
		pts = append(pts, sweep(cfg, core.ModeScatter, clientRange(4), duration, 200)...)
	}
	r := Report{
		ID:    "fig2",
		Title: "Baseline scAtteR performance on edge (paper Fig. 2)",
		Notes: `Paper: >=25 FPS and ~40ms E2E at 1 client for all configs; FPS collapses
		with concurrent clients (<5 FPS at 4) due to the sift<->matching dependency
		loop; memory grows with clients (sift state); CPU/GPU utilization declines
		as services stall.`,
		Tables: []Table{qosTable("QoS vs concurrent clients", pts), resourceTable("Per-service resources", pts)},
	}
	return pts, r
}

func scaledConfigsFig3() [][wire.NumSteps]int {
	return [][wire.NumSteps]int{
		{2, 2, 1, 1, 1},
		{1, 2, 1, 1, 2},
		{1, 2, 2, 1, 2},
	}
}

// Fig3 reproduces the service-scalability experiment: replicated scAtteR
// configurations on E2 (replicas on E1) with round-robin load balancing.
func Fig3(duration time.Duration) ([]RunPoint, Report) {
	var pts []RunPoint
	for _, counts := range scaledConfigsFig3() {
		cfg := namedConfig{ScaledName(counts), ConfigScaled(counts)}
		pts = append(pts, sweep(cfg, core.ModeScatter, clientRange(4), duration, 300)...)
	}
	r := Report{
		ID:    "fig3",
		Title: "Impact of service scalability on scAtteR (paper Fig. 3)",
		Notes: `Paper: replication does not rescue the stateful pipeline — [2,2,1,1,1]
		underperforms baseline (replicated ingress congests single-instance tail),
		[1,2,1,1,2] tracks baseline, and [1,2,2,1,2] is best (~10-15% FPS gain at
		2-3 clients) at ~30% higher E2E latency from load balancing.`,
		Tables: []Table{qosTable("QoS vs concurrent clients", pts), resourceTable("Per-service resources", pts)},
	}
	return pts, r
}

// Fig4 reproduces the cloud-only deployment.
func Fig4(duration time.Duration) ([]RunPoint, Report) {
	pts := sweep(namedConfig{"cloud", ConfigCloud}, core.ModeScatter, clientRange(4), duration, 400)
	r := Report{
		ID:    "fig4",
		Title: "Cloud-only scAtteR deployment (paper Fig. 4)",
		Notes: `Paper: ~18.2 FPS median at 1 client (vs 25+ on edge), 64% success,
		~+20ms E2E from client-cloud RTT; hardware far from saturated (<5% CPU,
		<25% GPU) — degradation comes from latency and virtualization, not load.`,
		Tables: []Table{qosTable("QoS vs concurrent clients", pts), resourceTable("Per-service resources", pts)},
	}
	return pts, r
}

// Fig6 reproduces the scAtteR++ baseline edge deployment.
func Fig6(duration time.Duration) ([]RunPoint, Report) {
	var pts []RunPoint
	for _, cfg := range edgeConfigs() {
		pts = append(pts, sweep(cfg, core.ModeScatterPP, clientRange(4), duration, 600)...)
	}
	r := Report{
		ID:    "fig6",
		Title: "scAtteR++ baseline on edge with sidecars (paper Fig. 6)",
		Notes: `Paper: ~9% single-client FPS gain (+17.6% success) and ~2.5x multi-
		client frame rate vs scAtteR; >=12 FPS maintained at 4 clients (C12 ~20);
		slightly higher per-service latency (sidecar RPC), resource use scales
		with load instead of collapsing.`,
		Tables: []Table{qosTable("QoS vs concurrent clients", pts), resourceTable("Per-service resources", pts)},
	}
	return pts, r
}

func scaledConfigsFig7() [][wire.NumSteps]int {
	return [][wire.NumSteps]int{
		{1, 2, 2, 1, 2},
		{1, 2, 1, 1, 2},
		{1, 3, 2, 1, 3},
	}
}

// Fig7 reproduces scAtteR++ scaling to ten clients under replication.
func Fig7(duration time.Duration) ([]RunPoint, Report) {
	var pts []RunPoint
	for _, counts := range scaledConfigsFig7() {
		cfg := namedConfig{ScaledName(counts), ConfigScaled(counts)}
		pts = append(pts, sweep(cfg, core.ModeScatterPP, clientRange(10), duration, 700)...)
	}
	r := Report{
		ID:    "fig7",
		Title: "scAtteR++ FPS with scaled services and 1-10 clients (paper Fig. 7)",
		Notes: `Paper: with stateless sift, replication finally pays off — scAtteR++
		serves ~8 clients at the frame rate scAtteR managed for 4 on the same
		cluster (~2.8x client capacity), richest config [1,3,2,1,3] degrading
		most gracefully.`,
		Tables: []Table{qosTable("QoS vs concurrent clients", pts)},
	}
	return pts, r
}

// analyticsInterval is the per-stage client-step length in the staged
// sidecar-analytics runs (the paper adds a client every fixed interval).
const analyticsInterval = 20 * time.Second

// stagedAnalytics runs a staged client ramp (one client per interval) and
// renders per-interval per-service ingress FPS and drop ratios.
func stagedAnalytics(id, title, notes string, build func(w *World) core.Placement, maxClients int, seed int64) (RunPoint, Report) {
	duration := analyticsInterval * time.Duration(maxClients)
	pt := Run(RunSpec{
		Name:          fmt.Sprintf("staged-%d-clients", maxClients),
		Mode:          core.ModeScatterPP,
		Placement:     build,
		Clients:       maxClients,
		Duration:      duration,
		Seed:          seed,
		ClientStagger: analyticsInterval,
	})
	fpsT := Table{
		Title:  "Per-service ingress FPS per interval (clients ramp 1..N)",
		Header: append([]string{"clients"}, ServiceNames()...),
	}
	dropT := Table{
		Title:  "Per-service queue drop ratio per interval",
		Header: append([]string{"clients"}, ServiceNames()...),
	}
	series := make(map[string][]float64)
	drops := make(map[string][]float64)
	for _, svc := range ServiceNames() {
		series[svc] = pt.IngressFPSSeries(svc, analyticsInterval)
		drops[svc] = pt.DropRatioSeries(svc, analyticsInterval)
	}
	for i := 0; i < maxClients; i++ {
		fpsRow := []string{fmt.Sprintf("%d", i+1)}
		dropRow := []string{fmt.Sprintf("%d", i+1)}
		for _, svc := range ServiceNames() {
			fpsRow = append(fpsRow, f1(series[svc][i]))
			dropRow = append(dropRow, f2(drops[svc][i]))
		}
		fpsT.Rows = append(fpsT.Rows, fpsRow)
		dropT.Rows = append(dropT.Rows, dropRow)
	}
	return pt, Report{ID: id, Title: title, Notes: notes, Tables: []Table{fpsT, dropT}}
}

// Fig8 reproduces the sidecar analytics on the scaled cluster: ingress
// FPS per service and queue drop ratio as clients ramp from 1 to 10.
func Fig8() (RunPoint, Report) {
	return stagedAnalytics("fig8",
		"Sidecar analytics: service FPS vs queue drops, 1-10 clients (paper Fig. 8)",
		`Paper: later-stage ingress FPS plateaus around ~90 FPS near 4 clients;
		primary caps at ~240 FPS; drop ratio grows from ~10% to 40-50% at the
		saturated stages as the pipeline hits its maximum throughput.`,
		ConfigScaled([wire.NumSteps]int{1, 3, 2, 1, 3}), 10, 800)
}

// Fig9 reproduces the mobile-connectivity emulation: packet loss and
// latency applied to the client access link of an E2 deployment.
func Fig9(duration time.Duration) ([]RunPoint, Report) {
	lossLevels := []struct {
		label string
		loss  float64
	}{
		{"0.00001%", 1e-7},
		{"0.01%", 1e-4},
		{"0.08%", 8e-4},
	}
	rttLevels := []struct {
		label string
		rtt   time.Duration
	}{
		{"1 ms", time.Millisecond},
		{"5 ms", 5 * time.Millisecond},
		{"10 ms", 10 * time.Millisecond},
		{"40 ms", 40 * time.Millisecond},
	}
	var pts []RunPoint
	lossT := Table{Title: "(a) packet loss (1 ms RTT, mobility oscillation)",
		Header: []string{"loss", "clients", "fps/client", "e2e(ms)", "success"}}
	for _, lv := range lossLevels {
		access := netem.WithMobility(netem.LinkConfig{
			Name: "access-loss-" + lv.label, RTT: time.Millisecond,
			Jitter: 200 * time.Microsecond, Loss: lv.loss,
		})
		for _, n := range clientRange(4) {
			pt := Run(RunSpec{
				Name: "loss=" + lv.label, Mode: core.ModeScatter, Placement: ConfigC2,
				Clients: n, Duration: duration, Seed: 900 + int64(n), ClientAccess: &access,
			})
			pts = append(pts, pt)
			lossT.Rows = append(lossT.Rows, []string{
				lv.label, fmt.Sprintf("%d", n), f1(pt.Summary.FPSPerClient),
				fms(pt.Summary.E2EMean), pct(pt.Summary.SuccessRate),
			})
		}
	}
	rttT := Table{Title: "(b) latency (0.00001% loss, mobility oscillation)",
		Header: []string{"rtt", "clients", "fps/client", "e2e(ms)", "success"}}
	for _, lv := range rttLevels {
		access := netem.WithMobility(netem.LinkConfig{
			Name: "access-rtt-" + lv.label, RTT: lv.rtt,
			Jitter: 200 * time.Microsecond, Loss: 1e-7,
		})
		for _, n := range clientRange(4) {
			pt := Run(RunSpec{
				Name: "rtt=" + lv.label, Mode: core.ModeScatter, Placement: ConfigC2,
				Clients: n, Duration: duration, Seed: 950 + int64(n), ClientAccess: &access,
			})
			pts = append(pts, pt)
			rttT.Rows = append(rttT.Rows, []string{
				lv.label, fmt.Sprintf("%d", n), f1(pt.Summary.FPSPerClient),
				fms(pt.Summary.E2EMean), pct(pt.Summary.SuccessRate),
			})
		}
	}
	r := Report{
		ID:    "fig9",
		Title: "Impact of varying network conditions on scAtteR (paper Fig. 9)",
		Notes: `Paper: loss variations only mildly limit frame rate (dropped frames);
		access latency shifts E2E latency up by ~RTT but leaves the frame rate
		consistent because scAtteR never drops frames on a latency budget.`,
		Tables: []Table{lossT, rttT},
	}
	return pts, r
}

// Fig10 reproduces the jitter summary across the three deployment
// families (baseline edge, scaled, cloud).
func Fig10(duration time.Duration) ([]RunPoint, Report) {
	type family struct {
		label   string
		mode    core.Mode
		configs []namedConfig
	}
	families := []family{
		{"a) baseline edge", core.ModeScatter, edgeConfigs()},
		{"b) service scalability", core.ModeScatter, func() []namedConfig {
			var out []namedConfig
			for _, counts := range scaledConfigsFig3() {
				out = append(out, namedConfig{ScaledName(counts), ConfigScaled(counts)})
			}
			return out
		}()},
		{"c) cloud", core.ModeScatter, []namedConfig{{"cloud", ConfigCloud}}},
	}
	var pts []RunPoint
	var tables []Table
	for _, fam := range families {
		t := Table{Title: fam.label, Header: []string{"config", "clients", "jitter(ms)"}}
		for _, cfg := range fam.configs {
			for _, n := range clientRange(4) {
				pt := Run(RunSpec{
					Name: cfg.name, Mode: fam.mode, Placement: cfg.build,
					Clients: n, Duration: duration, Seed: 1000 + int64(n),
				})
				pts = append(pts, pt)
				t.Rows = append(t.Rows, []string{cfg.name, fmt.Sprintf("%d", n), fms(pt.Summary.JitterMean)})
			}
		}
		tables = append(tables, t)
	}
	r := Report{
		ID:    "fig10",
		Title: "Jitter (Δ inter-frame receive time) across deployments (paper Fig. 10)",
		Notes: `Paper: jitter grows with concurrent clients (frame drops), up to ~9ms
		for baseline edge; smaller (~3ms) for scaled and cloud deployments, the
		cloud's driven by client-cloud latency fluctuations.`,
		Tables: tables,
	}
	return pts, r
}

// Fig11 reproduces the hybrid edge-cloud deployment [E1,C,C,C,C], plus a
// variant with reliable inter-service transport — the paper's A.1.2 note
// that improved network protocols instead of UDP may alleviate the WAN
// frame drops, implemented and measured.
func Fig11(duration time.Duration) ([]RunPoint, Report) {
	pts := sweep(namedConfig{"[E1,C,C,C,C]", ConfigHybrid}, core.ModeScatter, clientRange(4), duration, 1100)
	var reliable []RunPoint
	for _, n := range clientRange(4) {
		reliable = append(reliable, Run(RunSpec{
			Name: "[E1,C,C,C,C]+reliable", Mode: core.ModeScatter, Placement: ConfigHybrid,
			Clients: n, Duration: duration, Seed: 1100 + int64(n),
			Options: core.Options{ReliableTransport: true},
		}))
	}
	// The paper also tried decoupling across E1, E2 and the cloud but
	// found "significant artifacts due to state dependencies": with sift
	// on E2 and matching in the cloud, every state fetch crosses the WAN
	// twice inside matching's busy-wait window.
	threeWay := func(w *World) core.Placement {
		return core.PlaceOrdered(w.E1, w.E2, w.Cloud, w.Cloud, w.Cloud)
	}
	var split []RunPoint
	for _, n := range clientRange(4) {
		split = append(split, Run(RunSpec{
			Name: "[E1,E2,C,C,C]", Mode: core.ModeScatter, Placement: threeWay,
			Clients: n, Duration: duration, Seed: 1105 + int64(n),
		}))
	}
	all := append(append([]RunPoint(nil), pts...), reliable...)
	all = append(all, split...)
	qos := qosTable("QoS vs concurrent clients", all)
	svcT := Table{Title: "Per-service latency (UDP)", Header: append([]string{"clients"}, ServiceNames()...)}
	for _, pt := range pts {
		row := []string{fmt.Sprintf("%d", pt.Clients)}
		for _, svc := range ServiceNames() {
			row = append(row, fms(pt.Summary.Services[svc].MeanProc))
		}
		svcT.Rows = append(svcT.Rows, row)
	}
	r := Report{
		ID:    "fig11",
		Title: "Hybrid edge-cloud deployment [E1,C,C,C,C] (paper Fig. 11)",
		Notes: `Paper: severe degradation vs cloud-only — ~2x latency increase and
		heavy frame drops across the WAN between edge ingress and cloud tail;
		FPS <=15 even at 1 client. The +reliable rows implement the paper's
		A.1.2 suggestion (retransmitting transport instead of raw UDP):
		success recovers at the cost of retransmission latency.`,
		Tables: []Table{qos, svcT},
	}
	pts = append(pts, reliable...)
	pts = append(pts, split...)
	return pts, r
}

// Fig12 reproduces the sidecar analytics with all services on E1 while
// clients step 1 to 4.
func Fig12() (RunPoint, Report) {
	return stagedAnalytics("fig12",
		"Sidecar analytics on E1: per-service FPS vs queue drops, 1-4 clients (paper Fig. 12)",
		`Paper: all services keep up until the third client (~90 FPS input);
		beyond that the queue filter sheds load at the stages after sift, with
		drop ratios approaching ~50% at saturation.`,
		ConfigC1, 4, 1200)
}

// HeadlineResult captures the paper's headline comparison scalars.
type HeadlineResult struct {
	SingleClientFPSGain     float64 // scAtteR++ vs scAtteR at 1 client (paper ~ +9%)
	SingleClientSuccessGain float64 // percentage points (paper ~ +17.6)
	MultiClientFPSRatio     float64 // at 4 clients (paper ~2.5x; abstract ~4x)
	CapacityRatio           float64 // clients served at scAtteR's 4-client FPS (paper ~2.75-2.8x)
	ScatterFPSAt4           float64
	ScatterPPFPSAt4         float64
	ScatterPPClientsAtPar   int
}

// Headline computes the paper's §1/§5 headline scalars from fresh runs.
func Headline(duration time.Duration) (HeadlineResult, Report) {
	var res HeadlineResult
	// Single-client and 4-client comparison on the C12 split deployment
	// (the configuration scAtteR++ shines on in Fig. 6).
	base1 := Run(RunSpec{Name: "scatter-1", Mode: core.ModeScatter, Placement: ConfigC12, Clients: 1, Duration: duration, Seed: 1300})
	pp1 := Run(RunSpec{Name: "scatterpp-1", Mode: core.ModeScatterPP, Placement: ConfigC12, Clients: 1, Duration: duration, Seed: 1300})
	base4 := Run(RunSpec{Name: "scatter-4", Mode: core.ModeScatter, Placement: ConfigC12, Clients: 4, Duration: duration, Seed: 1304})
	pp4 := Run(RunSpec{Name: "scatterpp-4", Mode: core.ModeScatterPP, Placement: ConfigC12, Clients: 4, Duration: duration, Seed: 1304})
	if base1.Summary.FPSPerClient > 0 {
		res.SingleClientFPSGain = pp1.Summary.FPSPerClient/base1.Summary.FPSPerClient - 1
	}
	res.SingleClientSuccessGain = (pp1.Summary.SuccessRate - base1.Summary.SuccessRate) * 100
	res.ScatterFPSAt4 = base4.Summary.FPSPerClient
	res.ScatterPPFPSAt4 = pp4.Summary.FPSPerClient
	if base4.Summary.FPSPerClient > 0 {
		res.MultiClientFPSRatio = pp4.Summary.FPSPerClient / base4.Summary.FPSPerClient
	}
	// Client capacity on the scaled cluster: the paper compares scAtteR
	// at 4 clients with scAtteR++ on the same cluster, counting how many
	// clients scAtteR++ serves at a similar per-client frame rate.
	scaled := ConfigScaled([wire.NumSteps]int{1, 3, 2, 1, 3})
	ref := Run(RunSpec{Name: "scatter-scaled-4", Mode: core.ModeScatter, Placement: scaled, Clients: 4, Duration: duration, Seed: 1310})
	refFPS := ref.Summary.FPSPerClient
	par := 0
	for n := 1; n <= 12; n++ {
		pt := Run(RunSpec{Name: "scatterpp-scaled", Mode: core.ModeScatterPP, Placement: scaled, Clients: n, Duration: duration, Seed: 1310 + int64(n)})
		// "Similar framerate" as the paper phrases it: within 5% of what
		// scAtteR achieved with four clients on the same cluster.
		if pt.Summary.FPSPerClient >= 0.95*refFPS {
			par = n
		}
	}
	res.ScatterPPClientsAtPar = par
	if par > 0 {
		res.CapacityRatio = float64(par) / 4
	}
	rep := Report{
		ID:    "headline",
		Title: "Headline comparison scalars (paper §1/§5)",
		Notes: `Paper: ~+9% single-client FPS (+17.6% success), ~2.5x multi-client
		frame rate (abstract: ~4x), and ~2.75-2.8x concurrent client capacity
		for scAtteR++ over scAtteR.`,
		Tables: []Table{{
			Header: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"single-client FPS gain", "+9%", fmt.Sprintf("%+.1f%%", res.SingleClientFPSGain*100)},
				{"single-client success gain", "+17.6pp", fmt.Sprintf("%+.1fpp", res.SingleClientSuccessGain)},
				{"scAtteR FPS @4 clients", "<5", f1(res.ScatterFPSAt4)},
				{"scAtteR++ FPS @4 clients", "~12 (C12 ~20)", f1(res.ScatterPPFPSAt4)},
				{"multi-client FPS ratio", "~2.5x (abstract ~4x)", fmt.Sprintf("%.1fx", res.MultiClientFPSRatio)},
				{"clients at scAtteR-4 parity", "8", fmt.Sprintf("%d", res.ScatterPPClientsAtPar)},
				{"client capacity ratio", "~2.75x", fmt.Sprintf("%.2fx", res.CapacityRatio)},
			},
		}},
	}
	return res, rep
}
