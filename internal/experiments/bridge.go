package experiments

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

// timeZero is the registration timestamp used for simulated testbeds;
// the simulator does not exercise wall-clock heartbeat expiry.
var timeZero = time.Unix(0, 0)

// MachineByName resolves a testbed machine from its node name.
func (w *World) MachineByName(name string) (*testbed.Machine, bool) {
	switch name {
	case w.E1.Name():
		return w.E1, true
	case w.E2.Name():
		return w.E2, true
	case w.Cloud.Name():
		return w.Cloud, true
	default:
		return nil, false
	}
}

// RegisterTestbed registers the world's machines with a root
// orchestrator, using the machines' own capability profiles.
func (w *World) RegisterTestbed(root *orchestrator.Root) error {
	for _, m := range []*testbed.Machine{w.E1, w.E2, w.Cloud} {
		cfg := m.Config()
		info := orchestrator.NodeInfo{
			Name:     cfg.Name,
			Cluster:  cfg.Cluster,
			CPUCores: cfg.CPUCores,
			GPUs:     cfg.GPUs,
			GPUArch:  string(cfg.GPUArch),
			MemBytes: cfg.MemBytes,
		}
		if err := root.RegisterNode(info, timeZero); err != nil {
			return err
		}
	}
	return nil
}

// PlacementFromDeployment converts an orchestrator scheduling outcome
// into a simulator placement. The SLA's microservice names must be the
// five pipeline step names, and every scheduled node must be one of the
// world's machines.
func (w *World) PlacementFromDeployment(d *orchestrator.Deployment) (core.Placement, error) {
	var p core.Placement
	for step := 0; step < wire.NumSteps; step++ {
		name := wire.Step(step).String()
		insts := d.InstancesOf(name)
		if len(insts) == 0 {
			return p, fmt.Errorf("experiments: deployment %s has no %s instances", d.App, name)
		}
		for _, inst := range insts {
			m, ok := w.MachineByName(inst.Node)
			if !ok {
				return p, fmt.Errorf("experiments: deployment schedules %s on unknown node %s",
					inst.Key(), inst.Node)
			}
			p[step] = append(p[step], m)
		}
	}
	return p, nil
}

// ScatterSLA builds the scAtteR application SLA with the calibrated
// memory demands and GPU constraints, optionally pinning each service to
// machines (nil entries leave the scheduler free). replicas[i] <= 0
// means one replica.
func ScatterSLA(replicas [wire.NumSteps]int, pins [wire.NumSteps][]string) orchestrator.SLA {
	profiles := core.DefaultProfiles()
	gpuArchs := []string{
		string(testbed.ArchGeForceRTX), string(testbed.ArchAmpere), string(testbed.ArchTesla),
	}
	sla := orchestrator.SLA{AppName: "scatter"}
	for step := 0; step < wire.NumSteps; step++ {
		n := replicas[step]
		if n <= 0 {
			n = 1
		}
		ms := orchestrator.ServiceSLA{
			Name:     wire.Step(step).String(),
			Image:    "scatter/" + wire.Step(step).String(),
			Replicas: n,
			Requirements: orchestrator.Requirements{
				MemBytes: profiles[step].BaselineMem,
				Machines: pins[step],
			},
		}
		if profiles[step].UsesGPU() {
			ms.Requirements.NeedsGPU = true
			ms.Requirements.GPUArchIn = gpuArchs
		}
		sla.Microservices = append(sla.Microservices, ms)
	}
	return sla
}
