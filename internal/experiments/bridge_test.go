package experiments

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/wire"
)

// TestOrchestratorDrivesSimulation closes the loop: the SLA is scheduled
// by the real orchestrator (GPU/memory constraints and pins), the
// resulting deployment is converted to a simulator placement, and the
// pipeline runs on it.
func TestOrchestratorDrivesSimulation(t *testing.T) {
	w := NewWorld(77)
	root := orchestrator.NewRoot()
	if err := w.RegisterTestbed(root); err != nil {
		t.Fatal(err)
	}
	// Pin the C12 configuration through the SLA.
	pins := [wire.NumSteps][]string{
		{"E1"}, {"E1"}, {"E2"}, {"E2"}, {"E2"},
	}
	sla := ScatterSLA([wire.NumSteps]int{}, pins)
	d, err := root.Deploy(sla)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := w.PlacementFromDeployment(d)
	if err != nil {
		t.Fatal(err)
	}
	// The schedule must respect the pins.
	if placement[wire.StepPrimary][0] != w.E1 || placement[wire.StepMatching][0] != w.E2 {
		t.Fatal("pins not honoured through the orchestrator")
	}
	p := core.NewPipeline(w.Eng, w.Fabric, w.Col, placement, core.DefaultProfiles(),
		core.Options{Mode: core.ModeScatterPP})
	p.AddClient(core.ClientConfig{ID: 1, FPS: 30, Stop: 10 * time.Second})
	w.Eng.Run(10*time.Second + 500*time.Millisecond)
	s := w.Col.Summarize(10*time.Second, 1, nil)
	if s.FPSPerClient < 25 {
		t.Errorf("orchestrator-driven deployment FPS = %.1f", s.FPSPerClient)
	}
}

func TestScatterSLAConstraints(t *testing.T) {
	sla := ScatterSLA([wire.NumSteps]int{0, 2, 0, 0, 2}, [wire.NumSteps][]string{})
	if err := sla.Validate(); err != nil {
		t.Fatal(err)
	}
	if sla.Microservices[1].Replicas != 2 || sla.Microservices[4].Replicas != 2 {
		t.Error("replica counts lost")
	}
	if sla.Microservices[0].Requirements.NeedsGPU {
		t.Error("primary marked GPU-dependent")
	}
	for i := 1; i < wire.NumSteps; i++ {
		if !sla.Microservices[i].Requirements.NeedsGPU {
			t.Errorf("%s not GPU-dependent", sla.Microservices[i].Name)
		}
	}
}

func TestPlacementFromDeploymentErrors(t *testing.T) {
	w := NewWorld(1)
	// Missing services.
	if _, err := w.PlacementFromDeployment(&orchestrator.Deployment{App: "x"}); err == nil {
		t.Error("empty deployment accepted")
	}
	// Unknown node.
	d := &orchestrator.Deployment{App: "x"}
	for step := 0; step < wire.NumSteps; step++ {
		d.Instances = append(d.Instances, orchestrator.Instance{
			App: "x", Service: wire.Step(step).String(), Node: "mystery",
		})
	}
	if _, err := w.PlacementFromDeployment(d); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestMachineByName(t *testing.T) {
	w := NewWorld(1)
	if m, ok := w.MachineByName("E1"); !ok || m != w.E1 {
		t.Error("E1 lookup")
	}
	if _, ok := w.MachineByName("nope"); ok {
		t.Error("unknown machine found")
	}
	_ = sim.New // keep import shape stable
}
