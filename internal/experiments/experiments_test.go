package experiments

import (
	"os"
	"strings"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/wire"
)

// testDur keeps unit runs fast; the CLI uses DefaultDuration or longer.
const testDur = 15 * time.Second

// byConfigClients indexes points for assertions.
func index(pts []RunPoint) map[string]map[int]RunPoint {
	out := make(map[string]map[int]RunPoint)
	for _, pt := range pts {
		if out[pt.Config] == nil {
			out[pt.Config] = make(map[int]RunPoint)
		}
		out[pt.Config][pt.Clients] = pt
	}
	return out
}

func TestFig2Shape(t *testing.T) {
	pts, rep := Fig2(testDur)
	if len(pts) != 16 {
		t.Fatalf("fig2 points = %d, want 4 configs x 4 client counts", len(pts))
	}
	idx := index(pts)
	for cfg, byN := range idx {
		one, four := byN[1], byN[4]
		if one.Summary.FPSPerClient < 25 {
			t.Errorf("%s: 1-client FPS = %.1f, want >= 25 (paper)", cfg, one.Summary.FPSPerClient)
		}
		if one.Summary.E2EMean < 30*time.Millisecond || one.Summary.E2EMean > 60*time.Millisecond {
			t.Errorf("%s: 1-client E2E = %v, want ≈40ms", cfg, one.Summary.E2EMean)
		}
		if four.Summary.FPSPerClient > 8 {
			t.Errorf("%s: 4-client FPS = %.1f, paper struggled to maintain >5", cfg, four.Summary.FPSPerClient)
		}
		// sift memory grows with load (state retention).
		if four.Services["sift"].MemBytes <= one.Services["sift"].MemBytes {
			t.Errorf("%s: sift memory does not grow with clients (%d -> %d)",
				cfg, one.Services["sift"].MemBytes, four.Services["sift"].MemBytes)
		}
		// matching stalls at load: its GPU utilization declines (the
		// paper's counter-intuitive utilization drop).
		if four.Services["matching"].GPUPct >= one.Services["matching"].GPUPct {
			t.Errorf("%s: matching GPU util did not decline under load (%.3f -> %.3f)",
				cfg, one.Services["matching"].GPUPct, four.Services["matching"].GPUPct)
		}
	}
	if !strings.Contains(rep.Render(), "fig2") {
		t.Error("report render missing figure id")
	}
}

func TestFig3Shape(t *testing.T) {
	pts, _ := Fig3(testDur)
	if len(pts) != 12 {
		t.Fatalf("fig3 points = %d", len(pts))
	}
	idx := index(pts)
	best := idx["[1,2,2,1,2]"]
	ingressHeavy := idx["[2,2,1,1,1]"]
	// The paper's best-performing configuration beats the ingress-
	// replicated one at 2-3 concurrent clients.
	for _, n := range []int{2, 3} {
		if best[n].Summary.FPSPerClient < ingressHeavy[n].Summary.FPSPerClient {
			t.Errorf("[1,2,2,1,2] at %d clients (%.1f FPS) not better than [2,2,1,1,1] (%.1f)",
				n, best[n].Summary.FPSPerClient, ingressHeavy[n].Summary.FPSPerClient)
		}
	}
	// Replication cannot rescue the stateful pipeline: even the best
	// config collapses well below 30 FPS at 4 clients.
	if best[4].Summary.FPSPerClient > 20 {
		t.Errorf("[1,2,2,1,2] at 4 clients = %.1f FPS; stateful scaling limit missing", best[4].Summary.FPSPerClient)
	}
}

func TestFig4Shape(t *testing.T) {
	pts, _ := Fig4(testDur)
	if len(pts) != 4 {
		t.Fatalf("fig4 points = %d", len(pts))
	}
	one := pts[0]
	if one.Summary.FPSPerClient >= 25 {
		t.Errorf("cloud 1-client FPS = %.1f, want below edge (paper 18.2)", one.Summary.FPSPerClient)
	}
	if one.Summary.SuccessRate >= 0.9 {
		t.Errorf("cloud success = %.2f, want degraded (paper 64%%)", one.Summary.SuccessRate)
	}
	// Degradation is not hardware-driven: utilization stays moderate.
	for _, m := range one.Summary.Machines {
		if m.CPUUtil > 0.3 {
			t.Errorf("cloud CPU util = %.2f, paper <5%%", m.CPUUtil)
		}
	}
	// E2E carries the client-cloud RTT: clearly above edge's ~40ms.
	if one.Summary.E2EMean < 55*time.Millisecond {
		t.Errorf("cloud E2E = %v, want ≥ edge + RTT", one.Summary.E2EMean)
	}
}

func TestFig6Shape(t *testing.T) {
	pts6, _ := Fig6(testDur)
	if len(pts6) != 16 {
		t.Fatalf("fig6 points = %d", len(pts6))
	}
	idx6 := index(pts6)
	for cfg, byN := range idx6 {
		if byN[4].Summary.FPSPerClient < 10 {
			t.Errorf("%s: scAtteR++ 4-client FPS = %.1f, paper maintains ≈12+", cfg, byN[4].Summary.FPSPerClient)
		}
		// Stateless sift: no state memory growth.
		if byN[4].Services["sift"].MemBytes != byN[1].Services["sift"].MemBytes {
			t.Errorf("%s: scAtteR++ sift memory grew", cfg)
		}
		// Resource use scales with load instead of collapsing: sift GPU
		// utilization at 4 clients >= at 1 client.
		if byN[4].Services["sift"].GPUPct < byN[1].Services["sift"].GPUPct {
			t.Errorf("%s: scAtteR++ sift GPU util declined under load", cfg)
		}
	}
}

func TestFig6OutperformsFig2(t *testing.T) {
	pts2, _ := Fig2(testDur)
	pts6, _ := Fig6(testDur)
	i2, i6 := index(pts2), index(pts6)
	for cfg := range i2 {
		base := i2[cfg][4].Summary.FPSPerClient
		pp := i6[cfg][4].Summary.FPSPerClient
		if pp < 2*base {
			t.Errorf("%s: scAtteR++ %.1f vs scAtteR %.1f at 4 clients; want >= 2x (paper 2.5x)", cfg, pp, base)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	pts, _ := Fig7(testDur)
	if len(pts) != 30 {
		t.Fatalf("fig7 points = %d", len(pts))
	}
	idx := index(pts)
	for cfg, byN := range idx {
		// Light load keeps full frame rate; ten clients degrade but the
		// pipeline still delivers (no collapse).
		if byN[2].Summary.FPSPerClient < 25 {
			t.Errorf("%s: 2-client FPS = %.1f", cfg, byN[2].Summary.FPSPerClient)
		}
		if byN[10].Summary.FPSPerClient < 5 {
			t.Errorf("%s: 10-client FPS = %.1f; scAtteR++ should degrade gracefully", cfg, byN[10].Summary.FPSPerClient)
		}
		if byN[10].Summary.FPSPerClient > byN[2].Summary.FPSPerClient {
			t.Errorf("%s: FPS increased with 5x clients", cfg)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	pt, rep := Fig8()
	if pt.Clients != 10 {
		t.Fatalf("fig8 clients = %d", pt.Clients)
	}
	primary := pt.IngressFPSSeries("primary", analyticsInterval)
	if len(primary) != 10 {
		t.Fatalf("series length = %d", len(primary))
	}
	// Ingress at primary grows with the client ramp.
	if primary[0] < 25 || primary[0] > 35 {
		t.Errorf("interval 1 primary ingress = %.1f, want ~30", primary[0])
	}
	if primary[9] < primary[0]*3 {
		t.Errorf("primary ingress did not ramp: %v", primary)
	}
	// Post-sift stages plateau: matching ingress at 10 clients stays
	// below the raw 300 FPS offered load (the paper's ~90 FPS plateau).
	matching := pt.IngressFPSSeries("matching", analyticsInterval)
	if matching[9] > 200 {
		t.Errorf("matching ingress at 10 clients = %.1f; plateau missing", matching[9])
	}
	// Queue drops appear at the saturated stages late in the ramp.
	anyDrops := false
	for _, svc := range ServiceNames() {
		dr := pt.DropRatioSeries(svc, analyticsInterval)
		if dr[9] > 0.05 {
			anyDrops = true
		}
		if dr[0] > 0.2 {
			t.Errorf("%s drop ratio %.2f already at 1 client", svc, dr[0])
		}
	}
	if !anyDrops {
		t.Error("no service shows queue drops at 10 clients")
	}
	if len(rep.Tables) != 2 {
		t.Errorf("fig8 tables = %d", len(rep.Tables))
	}
}

func TestFig9Shape(t *testing.T) {
	pts, rep := Fig9(testDur)
	if len(pts) != (3+4)*4 {
		t.Fatalf("fig9 points = %d", len(pts))
	}
	idx := index(pts)
	// (a) loss does not drastically impact single-client performance.
	lo := idx["loss=0.00001%"][1].Summary
	hi := idx["loss=0.08%"][1].Summary
	if hi.FPSPerClient < lo.FPSPerClient-3 {
		t.Errorf("0.08%% loss dropped FPS from %.1f to %.1f; paper saw no drastic impact",
			lo.FPSPerClient, hi.FPSPerClient)
	}
	// (b) latency shifts E2E by ~RTT but leaves FPS consistent.
	r1 := idx["rtt=1 ms"][1].Summary
	r40 := idx["rtt=40 ms"][1].Summary
	shift := r40.E2EMean - r1.E2EMean
	if shift < 25*time.Millisecond || shift > 60*time.Millisecond {
		t.Errorf("E2E shift for 40ms RTT = %v, want ≈ +39ms", shift)
	}
	if r40.FPSPerClient < r1.FPSPerClient*0.75 {
		t.Errorf("40ms RTT dropped FPS %.1f -> %.1f; scAtteR has no latency budget",
			r1.FPSPerClient, r40.FPSPerClient)
	}
	if len(rep.Tables) != 2 {
		t.Errorf("fig9 tables = %d", len(rep.Tables))
	}
}

func TestFig10Shape(t *testing.T) {
	pts, rep := Fig10(testDur)
	if len(pts) != 16+12+4 {
		t.Fatalf("fig10 points = %d", len(pts))
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("fig10 tables = %d", len(rep.Tables))
	}
	// Cloud jitter exceeds single-machine edge jitter (latency
	// fluctuations on the WAN).
	idx := index(pts)
	cloud1 := idx["cloud"][1].Summary.JitterMean
	edge1 := idx["Edge1 (E1)"][1].Summary.JitterMean
	if cloud1 <= edge1 {
		t.Errorf("cloud jitter %v <= edge jitter %v", cloud1, edge1)
	}
}

func TestFig11Shape(t *testing.T) {
	pts, _ := Fig11(testDur)
	if len(pts) != 12 {
		t.Fatalf("fig11 points = %d (4 UDP + 4 reliable + 4 three-way)", len(pts))
	}
	// The reliable-transport variant (the paper's A.1.2 suggestion)
	// recovers success at a latency cost.
	udp1, rel1 := pts[0], pts[4]
	if rel1.Summary.SuccessRate <= udp1.Summary.SuccessRate {
		t.Errorf("reliable transport did not improve success: %.2f vs %.2f",
			rel1.Summary.SuccessRate, udp1.Summary.SuccessRate)
	}
	if rel1.Summary.E2EMean <= udp1.Summary.E2EMean {
		t.Errorf("reliable transport has no retransmission cost: %v vs %v",
			rel1.Summary.E2EMean, udp1.Summary.E2EMean)
	}
	// The three-way split (sift on E2, matching in the cloud) suffers the
	// state-dependency artifacts the paper reports: clearly worse than
	// the plain hybrid.
	threeWay1 := pts[8]
	if threeWay1.Summary.SuccessRate >= udp1.Summary.SuccessRate {
		t.Errorf("three-way split success %.2f not below hybrid %.2f",
			threeWay1.Summary.SuccessRate, udp1.Summary.SuccessRate)
	}
	cloudPts, _ := Fig4(testDur)
	// Hybrid performs worse than cloud-only (paper: severe degradation,
	// ~2x latency, WAN frame drops).
	if pts[0].Summary.FPSPerClient > cloudPts[0].Summary.FPSPerClient {
		t.Errorf("hybrid 1-client FPS %.1f > cloud-only %.1f",
			pts[0].Summary.FPSPerClient, cloudPts[0].Summary.FPSPerClient)
	}
	if pts[0].Summary.FPSPerClient > 17 {
		t.Errorf("hybrid FPS = %.1f, paper ~<=15", pts[0].Summary.FPSPerClient)
	}
	// WAN transit inflates E2E well beyond the edge's ~40ms.
	if pts[0].Summary.E2EMean < 70*time.Millisecond {
		t.Errorf("hybrid E2E = %v, want WAN-inflated", pts[0].Summary.E2EMean)
	}
	// WAN loss must be visible.
	if pts[3].Summary.Drops["loss"] == 0 {
		t.Error("no network loss recorded on the hybrid WAN path")
	}
}

func TestFig12Shape(t *testing.T) {
	pt, rep := Fig12()
	if pt.Clients != 4 {
		t.Fatalf("fig12 clients = %d", pt.Clients)
	}
	primary := pt.IngressFPSSeries("primary", analyticsInterval)
	if len(primary) != 4 {
		t.Fatalf("series length = %d", len(primary))
	}
	// Everything keeps up through two clients; drops appear by the ramp's
	// end at the post-sift stages.
	total := 0.0
	for _, svc := range ServiceNames() {
		dr := pt.DropRatioSeries(svc, analyticsInterval)
		if dr[0] > 0.1 {
			t.Errorf("%s drops %.2f at 1 client", svc, dr[0])
		}
		total += dr[3]
	}
	if total == 0 {
		t.Error("no queue drops at 4 clients on E1")
	}
	if len(rep.Tables) != 2 {
		t.Errorf("fig12 tables = %d", len(rep.Tables))
	}
}

func TestHeadline(t *testing.T) {
	res, rep := Headline(testDur)
	if res.SingleClientFPSGain <= 0 {
		t.Errorf("single-client FPS gain = %.3f, want positive (paper +9%%)", res.SingleClientFPSGain)
	}
	if res.SingleClientSuccessGain <= 0 {
		t.Errorf("success gain = %.1fpp, want positive (paper +17.6pp)", res.SingleClientSuccessGain)
	}
	if res.MultiClientFPSRatio < 2 {
		t.Errorf("multi-client ratio = %.1fx, want >= 2x (paper 2.5x)", res.MultiClientFPSRatio)
	}
	if res.CapacityRatio < 1.5 {
		t.Errorf("capacity ratio = %.2fx, want >= 1.5x (paper 2.75x)", res.CapacityRatio)
	}
	if res.ScatterPPFPSAt4 < 10 || res.ScatterFPSAt4 > 8 {
		t.Errorf("4-client FPS: scatter %.1f (paper <5), pp %.1f (paper ~12-20)",
			res.ScatterFPSAt4, res.ScatterPPFPSAt4)
	}
	if !strings.Contains(rep.Render(), "capacity") {
		t.Error("headline report incomplete")
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := RunSpec{Name: "det", Mode: core.ModeScatter, Placement: ConfigC1, Clients: 2, Duration: 10 * time.Second, Seed: 77}
	a := Run(spec)
	b := Run(spec)
	if a.Summary.FramesOK != b.Summary.FramesOK || a.Summary.E2EMean != b.Summary.E2EMean {
		t.Error("identical specs produced different results")
	}
}

func TestScaledName(t *testing.T) {
	if got := ScaledName([wire.NumSteps]int{1, 2, 2, 1, 2}); got != "[1,2,2,1,2]" {
		t.Errorf("ScaledName = %s", got)
	}
	if got := ScaledName([wire.NumSteps]int{0, 0, 0, 0, 0}); got != "[1,1,1,1,1]" {
		t.Errorf("ScaledName zeros = %s", got)
	}
}

func TestServiceNames(t *testing.T) {
	names := ServiceNames()
	want := []string{"primary", "sift", "encoding", "lsh", "matching"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestReportRender(t *testing.T) {
	r := Report{
		ID: "test", Title: "Render test", Notes: "note line",
		Tables: []Table{{
			Title:  "t",
			Header: []string{"a", "bb"},
			Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		}},
	}
	out := r.Render()
	for _, want := range []string{"== test:", "note line", "-- t --", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := Report{
		ID: "csvtest",
		Tables: []Table{
			{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}},
			{Header: []string{"x"}, Rows: [][]string{{"y"}, {"z"}}},
		},
	}
	dir := t.TempDir()
	paths, err := r.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a,b\n1,2\n" {
		t.Errorf("csv content = %q", data)
	}
}
