package experiments

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/appaware"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
)

// AppAwarePoint is one autoscaling-comparison run.
type AppAwarePoint struct {
	Mode    core.Mode
	Policy  string
	Summary SummaryLike
	Events  []appaware.ScaleEvent
}

// SummaryLike carries the fields the app-aware report needs.
type SummaryLike struct {
	FPSAggregate float64
	FPSPerClient float64
	SuccessRate  float64
	E2EMeanMS    float64
}

// AppAware runs the paper's §6 future-work proposal as an experiment:
// a client ramp against (a) a static deployment, (b) a hardware-
// threshold autoscaler (today's orchestrators), and (c) a QoS-driven
// autoscaler consuming sidecar analytics — for both scAtteR and
// scAtteR++. The contrast makes insights (I) and (IV) quantitative: the
// hardware policy never reacts because the collapse is invisible in
// utilization, while the QoS policy scales the distressed service.
func AppAware(duration time.Duration) ([]AppAwarePoint, Report) {
	if duration <= 0 {
		duration = 90 * time.Second
	}
	const clients = 6
	type variant struct {
		label  string
		policy appaware.Policy
	}
	variants := []variant{
		{"static", nil},
		{"hardware", appaware.HardwarePolicy{}},
		{"qos", appaware.QoSPolicy{}},
	}
	var pts []AppAwarePoint
	table := Table{
		Title: fmt.Sprintf("client ramp to %d over %v, scale-out hosts: E2", clients, duration),
		Header: []string{"system", "policy", "agg-fps", "fps/client", "success",
			"e2e(ms)", "scale-outs"},
	}
	for _, mode := range []core.Mode{core.ModeScatter, core.ModeScatterPP} {
		for _, v := range variants {
			w := NewWorld(1400)
			p := core.NewPipeline(w.Eng, w.Fabric, w.Col, core.PlaceAll(w.E1),
				core.DefaultProfiles(), core.Options{Mode: mode})
			step := duration / time.Duration(clients)
			for i := 0; i < clients; i++ {
				p.AddClient(core.ClientConfig{
					ID:    uint32(i + 1),
					FPS:   30,
					Start: sim.Time(i) * step,
					Stop:  duration,
				})
			}
			var scaler *appaware.Autoscaler
			if v.policy != nil {
				scaler = appaware.New(w.Eng, p, w.Col, v.policy, appaware.Config{
					Period: 5 * time.Second,
					Hosts:  []*testbed.Machine{w.E2},
				})
				scaler.Start(duration)
			}
			w.Eng.Run(duration + 500*time.Millisecond)
			_, machines := p.Usage()
			s := w.Col.Summarize(duration, clients, machines)
			pt := AppAwarePoint{
				Mode:   mode,
				Policy: v.label,
				Summary: SummaryLike{
					FPSAggregate: s.FPSAggregate,
					FPSPerClient: s.FPSPerClient,
					SuccessRate:  s.SuccessRate,
					E2EMeanMS:    float64(s.E2EMean) / float64(time.Millisecond),
				},
			}
			if scaler != nil {
				pt.Events = scaler.Events()
			}
			pts = append(pts, pt)
			table.Rows = append(table.Rows, []string{
				mode.String(), v.label,
				f1(pt.Summary.FPSAggregate), f1(pt.Summary.FPSPerClient),
				pct(pt.Summary.SuccessRate), f1(pt.Summary.E2EMeanMS),
				fmt.Sprintf("%d", len(pt.Events)),
			})
		}
	}
	events := Table{
		Title:  "scale-out events (qos policy)",
		Header: []string{"system", "t(s)", "service", "host", "reason"},
	}
	for _, pt := range pts {
		if pt.Policy != "qos" {
			continue
		}
		for _, ev := range pt.Events {
			events.Rows = append(events.Rows, []string{
				pt.Mode.String(), f1(ev.At.Seconds()), ev.Step.String(), ev.Machine, ev.Reason,
			})
		}
	}
	r := Report{
		ID:    "appaware",
		Title: "Application-aware orchestration (paper §6 future work)",
		Notes: `Extension beyond the paper's evaluation: the sidecar exports drop
		ratios through predefined hooks and an autoscaler acts on them. Under
		scAtteR's busy-drop collapse the devices stay underutilized, so the
		hardware-threshold policy (what utilization-only orchestrators can do)
		never fires — insight (I)/(IV). Under scAtteR++'s queued collapse the
		shared GPU does saturate and correctly windowed utilization eventually
		trips the hardware policy, but it scales the busiest-by-ingress
		service rather than the distressed one, needing more actions for less
		gain than the QoS policy, which scales the distressed stage directly;
		the overall gain is large for scAtteR++ and limited for scAtteR
		(state tie-ins, insight III).`,
		Tables: []Table{table, events},
	}
	return pts, r
}
