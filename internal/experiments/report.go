package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Table is a renderable block of experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Report is the harness output for one figure: the identifier, what the
// paper showed, and the regenerated data.
type Report struct {
	ID     string // e.g. "fig2"
	Title  string
	Notes  string // expectation vs paper, printed under the title
	Tables []Table
}

// Render formats the report as aligned plain text.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Notes != "" {
		for _, line := range strings.Split(strings.TrimSpace(r.Notes), "\n") {
			fmt.Fprintf(&b, "   %s\n", strings.TrimSpace(line))
		}
	}
	for _, t := range r.Tables {
		b.WriteString("\n")
		if t.Title != "" {
			fmt.Fprintf(&b, "-- %s --\n", t.Title)
		}
		b.WriteString(renderTable(t.Header, t.Rows))
	}
	return b.String()
}

// WriteCSV saves each table of the report as a CSV file under dir,
// named "<report-id>-<index>.csv", and returns the written paths.
func (r Report) WriteCSV(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: create csv dir: %w", err)
	}
	var paths []string
	for i, t := range r.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csv", r.ID, i+1))
		f, err := os.Create(path)
		if err != nil {
			return paths, fmt.Errorf("experiments: create %s: %w", path, err)
		}
		w := csv.NewWriter(f)
		if err := w.Write(t.Header); err != nil {
			f.Close()
			return paths, err
		}
		for _, row := range t.Rows {
			if err := w.Write(row); err != nil {
				f.Close()
				return paths, err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return paths, err
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Formatting helpers shared by the figure builders.

func fms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond)) }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func gb(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/float64(1<<30)) }
