package experiments

import (
	"testing"
	"time"
)

const ablDur = 20 * time.Second

func TestAblationThreshold(t *testing.T) {
	pts, rep := AblationThreshold(ablDur)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// E2E grows monotonically with the threshold; FPS stays capacity-
	// bound (the threshold trades latency, not throughput, at this load).
	for i := 1; i < len(pts); i++ {
		if pts[i].Summary.E2EMeanMS <= pts[i-1].Summary.E2EMeanMS {
			t.Errorf("E2E not increasing with threshold: %v -> %v",
				pts[i-1].Summary.E2EMeanMS, pts[i].Summary.E2EMeanMS)
		}
	}
	lo, hi := pts[0].Summary.FPSPerClient, pts[len(pts)-1].Summary.FPSPerClient
	if hi < lo*0.9 || hi > lo*1.1 {
		t.Errorf("FPS should stay capacity-bound: %v vs %v", lo, hi)
	}
	if len(rep.Tables) != 1 {
		t.Error("report tables")
	}
}

func TestAblationQueueCap(t *testing.T) {
	pts, _ := AblationQueueCap(ablDur)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Tiny queues shed as overflow; big queues shed at the threshold.
	if pts[0].Summary.DropOverflow == 0 {
		t.Error("cap=2 produced no overflow drops")
	}
	last := pts[len(pts)-1].Summary
	if last.DropOverflow != 0 {
		t.Errorf("cap=256 overflowed %d times", last.DropOverflow)
	}
	if last.DropThreshold == 0 {
		t.Error("cap=256 produced no threshold drops at saturation")
	}
	// Tiny queue keeps latency lower than a deep one.
	if pts[0].Summary.E2EMeanMS >= last.E2EMeanMS {
		t.Errorf("cap=2 E2E %v not below cap=256 %v",
			pts[0].Summary.E2EMeanMS, last.E2EMeanMS)
	}
}

func TestAblationFetchTimeout(t *testing.T) {
	pts, _ := AblationFetchTimeout(ablDur)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Longer busy-waits amplify the dependency loop: FPS decreases.
	first, last := pts[0].Summary.FPSPerClient, pts[len(pts)-1].Summary.FPSPerClient
	if last >= first {
		t.Errorf("FPS should fall with fetch timeout: %v -> %v", first, last)
	}
}

func TestAblationStateTimeout(t *testing.T) {
	pts, _ := AblationStateTimeout(ablDur)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	// Memory grows with retention while success stays flat.
	first, last := pts[0].Summary, pts[len(pts)-1].Summary
	if last.SiftMemBytes <= first.SiftMemBytes {
		t.Errorf("sift memory did not grow with retention: %d -> %d",
			first.SiftMemBytes, last.SiftMemBytes)
	}
	if diff := last.SuccessRate - first.SuccessRate; diff > 0.05 || diff < -0.05 {
		t.Errorf("success moved %.3f with retention; should be flat", diff)
	}
}

func TestAblationsCombined(t *testing.T) {
	r := Ablations(ablDur)
	if len(r.Tables) != 5 {
		t.Fatalf("combined tables = %d", len(r.Tables))
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestAblationFastModel(t *testing.T) {
	pts, _ := AblationFastModel(ablDur)
	if len(pts) != 12 {
		t.Fatalf("points = %d", len(pts))
	}
	byVariant := map[string]map[int]AblationPoint{}
	for _, pt := range pts {
		if byVariant[pt.Param] == nil {
			byVariant[pt.Param] = map[int]AblationPoint{}
		}
		byVariant[pt.Param][pt.Clients] = pt
	}
	sift := byVariant["extractor-sift"]
	fast := byVariant["extractor-fast"]
	// The faster extractor sustains more clients before saturating...
	if fast[6].Summary.FPSPerClient <= sift[6].Summary.FPSPerClient {
		t.Errorf("fast extractor no better at 6 clients: %.1f vs %.1f",
			fast[6].Summary.FPSPerClient, sift[6].Summary.FPSPerClient)
	}
	// ...but still saturates eventually (paper §5: model optimization is
	// no substitute for horizontal scalability).
	if fast[10].Summary.FPSPerClient >= fast[1].Summary.FPSPerClient*0.95 {
		t.Errorf("fast extractor never saturated: %.1f at 10 clients vs %.1f at 1",
			fast[10].Summary.FPSPerClient, fast[1].Summary.FPSPerClient)
	}
}

func TestSeedSensitivity(t *testing.T) {
	pts, rep := SeedSensitivity(15*time.Second, 3)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.FPSMean <= 0 {
			t.Errorf("%s: mean FPS = %v", pt.Config, pt.FPSMean)
		}
		if pt.FPSStd < 0 || pt.E2EStd < 0 {
			t.Errorf("%s: negative std", pt.Config)
		}
	}
	// Unsaturated single-client points are far more stable than the
	// saturated scAtteR point.
	var sat1, unsat1 VariancePoint
	for _, pt := range pts {
		if pt.Config == "scAtteR E1 4c" {
			sat1 = pt
		}
		if pt.Config == "scAtteR++ E1 1c" {
			unsat1 = pt
		}
	}
	relSat := sat1.FPSStd / sat1.FPSMean
	relUnsat := unsat1.FPSStd / (unsat1.FPSMean + 1e-9)
	if relSat <= relUnsat {
		t.Errorf("saturated variance %.3f not above unsaturated %.3f", relSat, relUnsat)
	}
	if len(rep.Tables) != 1 {
		t.Error("report tables")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s < 2.0 || s > 2.3 { // sample std of this classic set ≈ 2.138
		t.Errorf("std = %v", s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Error("empty meanStd")
	}
	if _, s := meanStd([]float64{3}); s != 0 {
		t.Error("single-element std")
	}
}
