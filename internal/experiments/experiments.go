// Package experiments reproduces every figure of the paper's evaluation
// (Figures 2–4 and 6–12) plus the headline scalars of §1/§5, by running
// the scAtteR/scAtteR++ pipelines on the simulated testbed. Each FigN
// function returns the measured data as typed points and a renderable
// text report whose rows mirror the series the paper plots.
package experiments

import (
	"fmt"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/netem"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/sim"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

// World is one simulated instantiation of the paper's testbed.
type World struct {
	Eng    *sim.Engine
	Fabric *core.Fabric
	Col    *metrics.Collector
	E1     *testbed.Machine
	E2     *testbed.Machine
	Cloud  *testbed.Machine
}

// NewWorld builds the machines and network of §3.2 on a fresh engine.
func NewWorld(seed int64) *World {
	eng := sim.New(seed)
	return &World{
		Eng:    eng,
		Fabric: core.NewFabric(eng),
		Col:    metrics.NewCollector(),
		E1:     testbed.NewMachine(testbed.E1(), eng),
		E2:     testbed.NewMachine(testbed.E2(), eng),
		Cloud:  testbed.NewMachine(testbed.Cloud(), eng),
	}
}

// DefaultDuration is the per-run virtual experiment length. The paper
// runs five minutes per point; sixty seconds of virtual time yields the
// same steady-state statistics in a fraction of the event count, and the
// CLI can raise it.
const DefaultDuration = 60 * time.Second

// RunSpec describes one experiment run (one point in a figure).
type RunSpec struct {
	Name      string
	Mode      core.Mode
	Placement func(w *World) core.Placement
	Clients   int
	Duration  time.Duration // default DefaultDuration
	Seed      int64         // default 1
	Options   core.Options  // Mode is overwritten from Mode field
	// ClientAccess overrides the client access link (Fig. 9).
	ClientAccess *netem.LinkConfig
	// Profiles overrides the service compute profiles (nil = defaults);
	// used by the faster-extractor ablation.
	Profiles *core.Profiles
	// ClientStagger delays each successive client's start; small by
	// default, one interval in the staged-deploy analytics figures.
	ClientStagger time.Duration
	// FPS overrides the 30 FPS camera rate.
	FPS int
	// Trace attaches a per-frame span recorder to the pipeline; the
	// spans are retrievable via RunPoint.Spans. Off by default so
	// benchmark runs carry no tracing overhead.
	Trace bool
	// TraceMaxSpans bounds the recorder (obs.DefaultMaxSpans when zero).
	TraceMaxSpans int
}

// RunPoint is the measured outcome of one run.
type RunPoint struct {
	Config   string
	Mode     core.Mode
	Clients  int
	Duration time.Duration
	Summary  metrics.Summary
	Services map[string]core.ServiceUsage
	// World and pipeline survive for figure-specific post-processing
	// (ingress/drop series).
	world    *World
	pipeline *core.Pipeline
}

// Run executes one spec on a fresh world.
func Run(spec RunSpec) RunPoint {
	if spec.Duration <= 0 {
		spec.Duration = DefaultDuration
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Clients <= 0 {
		spec.Clients = 1
	}
	if spec.ClientStagger == 0 {
		spec.ClientStagger = 7 * time.Millisecond
	}
	w := NewWorld(spec.Seed)
	if spec.ClientAccess != nil {
		w.Fabric.SetClientAccess(*spec.ClientAccess)
	}
	opts := spec.Options
	opts.Mode = spec.Mode
	profiles := core.DefaultProfiles()
	if spec.Profiles != nil {
		profiles = *spec.Profiles
	}
	p := core.NewPipeline(w.Eng, w.Fabric, w.Col, spec.Placement(w), profiles, opts)
	if spec.Trace {
		p.SetTracer(obs.NewRecorder(spec.TraceMaxSpans))
	}
	for i := 0; i < spec.Clients; i++ {
		p.AddClient(core.ClientConfig{
			ID:    uint32(i + 1),
			FPS:   spec.FPS,
			Start: sim.Time(i) * spec.ClientStagger,
			Stop:  spec.Duration,
		})
	}
	w.Eng.Run(spec.Duration + 500*time.Millisecond)
	services, machines := p.Usage()
	return RunPoint{
		Config:   spec.Name,
		Mode:     spec.Mode,
		Clients:  spec.Clients,
		Duration: spec.Duration,
		Summary:  w.Col.Summarize(spec.Duration, spec.Clients, machines),
		Services: services,
		world:    w,
		pipeline: p,
	}
}

// Spans returns the per-frame spans recorded during the run, or nil when
// the spec did not enable tracing.
func (pt RunPoint) Spans() []obs.Span {
	return pt.pipeline.Tracer().Spans()
}

// RouteDigests returns the final per-replica routing windows of the run,
// or nil when the spec did not enable Options.WeightedRouting.
func (pt RunPoint) RouteDigests() []routestats.RouteDigest {
	return pt.pipeline.RouteDigests()
}

// IngressFPSSeries exposes the per-service ingress FPS over intervals of
// the run (Figures 8/12).
func (pt RunPoint) IngressFPSSeries(service string, interval time.Duration) []float64 {
	return pt.world.Col.IngressFPSSeries(service, pt.Duration, interval)
}

// DropRatioSeries exposes the per-service drop-ratio series.
func (pt RunPoint) DropRatioSeries(service string, interval time.Duration) []float64 {
	return pt.world.Col.DropRatioSeries(service, pt.Duration, interval)
}

// ServiceNames lists the five services in pipeline order.
func ServiceNames() []string {
	names := make([]string, wire.NumSteps)
	for i := 0; i < wire.NumSteps; i++ {
		names[i] = wire.Step(i).String()
	}
	return names
}

// Placement catalogue — the configurations the paper evaluates.

// ConfigC1 deploys everything on E1.
func ConfigC1(w *World) core.Placement { return core.PlaceAll(w.E1) }

// ConfigC2 deploys everything on E2.
func ConfigC2(w *World) core.Placement { return core.PlaceAll(w.E2) }

// ConfigC12 is [E1,E1,E2,E2,E2]: primary and sift on E1.
func ConfigC12(w *World) core.Placement {
	return core.PlaceOrdered(w.E1, w.E1, w.E2, w.E2, w.E2)
}

// ConfigC21 is [E2,E2,E1,E1,E1]: primary and sift on E2.
func ConfigC21(w *World) core.Placement {
	return core.PlaceOrdered(w.E2, w.E2, w.E1, w.E1, w.E1)
}

// ConfigCloud deploys everything on the AWS VM (Fig. 4).
func ConfigCloud(w *World) core.Placement { return core.PlaceAll(w.Cloud) }

// ConfigHybrid is [E1,C,C,C,C]: ingress at the edge, the rest in the
// cloud (Fig. 11).
func ConfigHybrid(w *World) core.Placement {
	return core.PlaceOrdered(w.E1, w.Cloud, w.Cloud, w.Cloud, w.Cloud)
}

// ConfigScaled builds the replication configurations of Figures 3 and 7:
// the base pipeline runs on E2 and additional replicas land on E1 (then
// alternate back to E2 for triple replication), matching "QoS over E2
// with another replica on E1".
func ConfigScaled(counts [wire.NumSteps]int) func(w *World) core.Placement {
	return func(w *World) core.Placement {
		hosts := []*testbed.Machine{w.E2, w.E1}
		var p core.Placement
		for step, n := range counts {
			if n <= 0 {
				n = 1
			}
			for r := 0; r < n; r++ {
				p[step] = append(p[step], hosts[r%len(hosts)])
			}
		}
		return p
	}
}

// ScaledName renders a replication vector the way the paper labels it,
// e.g. [1,2,2,1,2].
func ScaledName(counts [wire.NumSteps]int) string {
	s := "["
	for i, n := range counts {
		if i > 0 {
			s += ","
		}
		if n <= 0 {
			n = 1
		}
		s += fmt.Sprintf("%d", n)
	}
	return s + "]"
}
