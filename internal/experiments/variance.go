package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/edge-mar/scatter/internal/core"
)

// VariancePoint summarizes one configuration's spread across seeds.
type VariancePoint struct {
	Config  string
	Mode    core.Mode
	Clients int
	Seeds   int
	FPSMean float64
	FPSStd  float64
	E2EMean time.Duration
	E2EStd  time.Duration
}

// SeedSensitivity quantifies run-to-run variance: the paper ensures
// repeatability by replaying a fixed clip over five-minute runs; here
// every run is deterministic for a given seed, so the residual variance
// across seeds measures how sensitive each configuration's QoS is to
// timing randomness (arrival phases, stragglers, loss draws). Saturated
// scAtteR points are the most seed-sensitive — their QoS depends on
// which frames happen to collide.
func SeedSensitivity(duration time.Duration, seeds int) ([]VariancePoint, Report) {
	if seeds <= 1 {
		seeds = 5
	}
	type cfg struct {
		name    string
		mode    core.Mode
		clients int
	}
	cfgs := []cfg{
		{"scAtteR E1 1c", core.ModeScatter, 1},
		{"scAtteR E1 4c", core.ModeScatter, 4},
		{"scAtteR++ E1 1c", core.ModeScatterPP, 1},
		{"scAtteR++ E1 4c", core.ModeScatterPP, 4},
	}
	var pts []VariancePoint
	t := Table{
		Title:  fmt.Sprintf("%d seeds per point, %v virtual time", seeds, duration),
		Header: []string{"config", "fps mean", "fps std", "e2e mean(ms)", "e2e std(ms)"},
	}
	for _, c := range cfgs {
		var fps, e2e []float64
		for s := 0; s < seeds; s++ {
			pt := Run(RunSpec{
				Name: c.name, Mode: c.mode, Placement: ConfigC1,
				Clients: c.clients, Duration: duration,
				Seed: 1600 + int64(s)*97,
			})
			fps = append(fps, pt.Summary.FPSPerClient)
			e2e = append(e2e, float64(pt.Summary.E2EMean))
		}
		fm, fs := meanStd(fps)
		em, es := meanStd(e2e)
		vp := VariancePoint{
			Config: c.name, Mode: c.mode, Clients: c.clients, Seeds: seeds,
			FPSMean: fm, FPSStd: fs,
			E2EMean: time.Duration(em), E2EStd: time.Duration(es),
		}
		pts = append(pts, vp)
		t.Rows = append(t.Rows, []string{
			c.name, f1(fm), f2(fs), fms(vp.E2EMean), f2(es / float64(time.Millisecond)),
		})
	}
	r := Report{
		ID:    "variance",
		Title: "Seed sensitivity of the reported metrics",
		Notes: `Each figure point in this repository is one seeded deterministic run
		(the paper's analogue of one five-minute testbed run). The spread across
		seeds bounds how much of any reported difference could be timing luck;
		saturated stateful configurations vary the most.`,
		Tables: []Table{t},
	}
	return pts, r
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}
