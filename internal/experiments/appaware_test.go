package experiments

import (
	"testing"
	"time"
)

func TestAppAwareComparison(t *testing.T) {
	pts, rep := AppAware(60 * time.Second)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := map[string]AppAwarePoint{}
	for _, pt := range pts {
		byKey[pt.Mode.String()+"/"+pt.Policy] = pt
	}
	for _, mode := range []string{"scAtteR", "scAtteR++"} {
		static := byKey[mode+"/static"]
		hw := byKey[mode+"/hardware"]
		qos := byKey[mode+"/qos"]
		// The QoS policy must react and improve aggregate throughput.
		if len(qos.Events) == 0 {
			t.Errorf("%s: qos policy never scaled", mode)
		}
		if qos.Summary.FPSAggregate <= static.Summary.FPSAggregate*1.1 {
			t.Errorf("%s: qos scaling did not help (%.1f vs %.1f)",
				mode, qos.Summary.FPSAggregate, static.Summary.FPSAggregate)
		}
		switch mode {
		case "scAtteR":
			// Insight (I)/(IV): the busy-drop collapse keeps the devices
			// underutilized, so even correctly windowed utilization never
			// crosses a threshold — the hardware policy is fully blind and
			// its run is bit-identical to static.
			if len(hw.Events) != 0 {
				t.Errorf("%s: hardware policy fired %d times", mode, len(hw.Events))
			}
			if hw.Summary.FPSAggregate != static.Summary.FPSAggregate {
				t.Errorf("%s: hardware run diverged from static without scaling", mode)
			}
		case "scAtteR++":
			// The queued collapse does saturate the shared GPU, so windowed
			// utilization eventually trips the hardware policy (cumulative
			// utilization — the old bug — never did). But it scales blind:
			// busiest-by-ingress, not the distressed stage, so it needs more
			// actions than the QoS policy and still does not beat it.
			if len(hw.Events) == 0 {
				t.Errorf("%s: windowed hardware policy never saw the saturated GPU", mode)
			}
			if len(qos.Events) >= len(hw.Events) {
				t.Errorf("%s: qos needed %d actions, hardware %d — app-aware targeting should need fewer",
					mode, len(qos.Events), len(hw.Events))
			}
			if qos.Summary.FPSAggregate < hw.Summary.FPSAggregate {
				t.Errorf("%s: hardware scaling beat qos (%.1f vs %.1f)",
					mode, hw.Summary.FPSAggregate, qos.Summary.FPSAggregate)
			}
		}
	}
	// scAtteR++ with QoS autoscaling is the overall best system.
	if byKey["scAtteR++/qos"].Summary.FPSAggregate <= byKey["scAtteR/qos"].Summary.FPSAggregate {
		t.Error("scAtteR++/qos not the best configuration")
	}
	if len(rep.Tables) != 2 {
		t.Errorf("tables = %d", len(rep.Tables))
	}
}
