package experiments

import (
	"testing"
	"time"
)

func TestAppAwareComparison(t *testing.T) {
	pts, rep := AppAware(60 * time.Second)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	byKey := map[string]AppAwarePoint{}
	for _, pt := range pts {
		byKey[pt.Mode.String()+"/"+pt.Policy] = pt
	}
	for _, mode := range []string{"scAtteR", "scAtteR++"} {
		static := byKey[mode+"/static"]
		hw := byKey[mode+"/hardware"]
		qos := byKey[mode+"/qos"]
		// Insight (I)/(IV): hardware-only policy is blind — identical to
		// static (it never fires during the low-utilization collapse).
		if len(hw.Events) != 0 {
			t.Errorf("%s: hardware policy fired %d times", mode, len(hw.Events))
		}
		if hw.Summary.FPSAggregate != static.Summary.FPSAggregate {
			t.Errorf("%s: hardware run diverged from static without scaling", mode)
		}
		// The QoS policy must react and improve aggregate throughput.
		if len(qos.Events) == 0 {
			t.Errorf("%s: qos policy never scaled", mode)
		}
		if qos.Summary.FPSAggregate <= static.Summary.FPSAggregate*1.1 {
			t.Errorf("%s: qos scaling did not help (%.1f vs %.1f)",
				mode, qos.Summary.FPSAggregate, static.Summary.FPSAggregate)
		}
	}
	// scAtteR++ with QoS autoscaling is the overall best system.
	if byKey["scAtteR++/qos"].Summary.FPSAggregate <= byKey["scAtteR/qos"].Summary.FPSAggregate {
		t.Error("scAtteR++/qos not the best configuration")
	}
	if len(rep.Tables) != 2 {
		t.Errorf("tables = %d", len(rep.Tables))
	}
}
