package trace

import (
	"image/png"
	"os"
	"path/filepath"
	"testing"

	"github.com/edge-mar/scatter/internal/vision/sift"
)

func smallGen() *Generator {
	return NewGenerator(Config{W: 160, H: 90, FPS: 10, Seconds: 1, Seed: 7})
}

func TestDefaults(t *testing.T) {
	g := NewGenerator(Config{})
	w, h := g.Size()
	if w != 1280 || h != 720 {
		t.Errorf("default size = %dx%d, want 1280x720", w, h)
	}
	if g.FPS() != 30 {
		t.Errorf("default FPS = %d", g.FPS())
	}
	if g.NumFrames() != 300 {
		t.Errorf("default frames = %d, want 300 (10 s @ 30 FPS)", g.NumFrames())
	}
}

func TestFrameDeterministic(t *testing.T) {
	g1 := smallGen()
	g2 := smallGen()
	f1 := g1.Frame(3)
	f2 := g2.Frame(3)
	for i := range f1.Pix {
		if f1.Pix[i] != f2.Pix[i] {
			t.Fatalf("frame 3 differs at byte %d between identical generators", i)
		}
	}
}

func TestFramesDiffer(t *testing.T) {
	g := smallGen()
	f0 := g.Frame(0)
	f5 := g.Frame(5)
	diff := 0
	for i := range f0.Pix {
		if f0.Pix[i] != f5.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("frames 0 and 5 are identical; camera motion/noise missing")
	}
}

func TestFramePanicsOutOfRange(t *testing.T) {
	g := smallGen()
	for _, i := range []int{-1, g.NumFrames()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Frame(%d) did not panic", i)
				}
			}()
			g.Frame(i)
		}()
	}
}

func TestGroundTruthVisibility(t *testing.T) {
	g := NewGenerator(Config{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	gt := g.GroundTruth(0)
	if len(gt) != NumObjects {
		t.Fatalf("ground truth has %d objects, want %d", len(gt), NumObjects)
	}
	visible := 0
	for _, p := range gt {
		if p.Visible {
			visible++
		}
		if p.Scale <= 0 {
			t.Errorf("object %d scale = %v", p.ObjectID, p.Scale)
		}
	}
	if visible == 0 {
		t.Error("no objects visible in frame 0")
	}
}

func TestReferenceImages(t *testing.T) {
	g := smallGen()
	refs := g.ReferenceImages()
	if len(refs) != NumObjects {
		t.Fatalf("got %d reference images, want %d", len(refs), NumObjects)
	}
	for _, r := range refs {
		if r.Img.W < 8 || r.Img.H < 8 {
			t.Errorf("%s reference image too small: %dx%d", r.Name, r.Img.W, r.Img.H)
		}
		// Reference images must contain contrast (texture) for SIFT.
		lo, hi := float32(1), float32(0)
		for _, v := range r.Img.Pix {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo < 0.2 {
			t.Errorf("%s reference image has low contrast: [%v, %v]", r.Name, lo, hi)
		}
	}
}

func TestObjectName(t *testing.T) {
	if ObjectName(ObjectMonitor) != "monitor" ||
		ObjectName(ObjectKeyboard) != "keyboard" ||
		ObjectName(ObjectMug) != "mug" {
		t.Error("object names wrong")
	}
	if ObjectName(42) != "object-42" {
		t.Errorf("unknown object name = %s", ObjectName(42))
	}
}

func TestFrameBytes(t *testing.T) {
	if FrameBytes(false) != 180<<10 {
		t.Errorf("stateful frame bytes = %d", FrameBytes(false))
	}
	if FrameBytes(true) != 480<<10 {
		t.Errorf("stateless frame bytes = %d", FrameBytes(true))
	}
	if FrameBytes(true) <= FrameBytes(false) {
		t.Error("stateless frames must be larger (carry sift state)")
	}
}

// The reference images must yield SIFT features — otherwise the pipeline's
// recognition path is vacuous.
func TestReferenceImagesYieldFeatures(t *testing.T) {
	g := NewGenerator(Config{W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7})
	det := sift.New(sift.Defaults())
	for _, r := range g.ReferenceImages() {
		feats := det.Detect(r.Img)
		if len(feats) < 5 {
			t.Errorf("%s reference image yields only %d features", r.Name, len(feats))
		}
	}
}

// Ground truth consistency: sampling a rendered frame at the projected
// object center should see object texture, not background, for visible
// objects well inside the frame.
func TestGroundTruthAlignsWithRender(t *testing.T) {
	g := NewGenerator(Config{W: 640, H: 360, FPS: 10, Seconds: 1, Seed: 7, Noise: 0.0001})
	frame := g.GrayFrame(0)
	refs := g.ReferenceImages()
	for _, p := range g.GroundTruth(0) {
		if !p.Visible {
			continue
		}
		ref := refs[p.ObjectID].Img
		// Object center in reference coordinates -> frame coordinates.
		cx := p.OffX + p.Scale*float64(ref.W)/2
		cy := p.OffY + p.Scale*float64(ref.H)/2
		if cx < 2 || cy < 2 || cx > float64(frame.W-3) || cy > float64(frame.H-3) {
			continue
		}
		got := float64(frame.BilinearAt(cx, cy))
		want := float64(ref.BilinearAt(float64(ref.W)/2, float64(ref.H)/2))
		// Grayscale weighting shifts color channels; allow loose tolerance
		// but require correlation (both dark or both bright).
		if (want > 0.5) != (got > 0.25) && (want < 0.5) != (got < 0.75) {
			t.Errorf("object %s: center luminance %v vs reference %v look inconsistent",
				ObjectName(p.ObjectID), got, want)
		}
	}
}

func BenchmarkFrame720p(b *testing.B) {
	g := NewGenerator(Config{Seed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Frame(i % g.NumFrames())
	}
}

func BenchmarkFrame180p(b *testing.B) {
	g := NewGenerator(Config{W: 320, H: 180, Seed: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Frame(i % g.NumFrames())
	}
}

func TestWritePNG(t *testing.T) {
	g := NewGenerator(Config{W: 64, H: 36, FPS: 5, Seconds: 1, Seed: 7})
	dir := t.TempDir()
	rgbPath := filepath.Join(dir, "frame.png")
	if err := WritePNG(g.Frame(0), rgbPath); err != nil {
		t.Fatal(err)
	}
	grayPath := filepath.Join(dir, "gray.png")
	if err := WriteGrayPNG(g.GrayFrame(0), grayPath); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{rgbPath, grayPath} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		img, err := png.Decode(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 36 {
			t.Errorf("%s: bounds = %v", p, img.Bounds())
		}
	}
	// Unwritable path errors.
	if err := WritePNG(g.Frame(0), filepath.Join(dir, "nope", "x.png")); err == nil {
		t.Error("write into missing dir succeeded")
	}
}

func TestMotionProfiles(t *testing.T) {
	static := NewGenerator(Config{W: 96, H: 54, FPS: 10, Seconds: 1, Seed: 7, Motion: MotionStatic, Noise: 0.0001})
	// Static camera: ground truth placement identical across frames.
	a := static.GroundTruth(0)
	b := static.GroundTruth(9)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("static camera moved object %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Shaky camera drifts more frame-to-frame than the smooth profile.
	drift := func(m Motion) float64 {
		g := NewGenerator(Config{W: 96, H: 54, FPS: 30, Seconds: 1, Seed: 7, Motion: m})
		total := 0.0
		prev := g.GroundTruth(0)
		for i := 1; i < 30; i++ {
			cur := g.GroundTruth(i)
			dx := cur[0].OffX - prev[0].OffX
			dy := cur[0].OffY - prev[0].OffY
			total += dx*dx + dy*dy
			prev = cur
		}
		return total
	}
	if drift(MotionShaky) <= drift(MotionSmooth) {
		t.Error("shaky profile does not move more than smooth")
	}
}
