package trace

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"

	"github.com/edge-mar/scatter/internal/vision/imgproc"
)

// WritePNG saves an RGB frame as a PNG file — handy for inspecting the
// synthetic clip and debugging recognition.
func WritePNG(img *imgproc.RGB, path string) error {
	out := image.NewRGBA(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			r, g, b := img.AtRGB(x, y)
			out.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return encodePNG(out, path)
}

// WriteGrayPNG saves a grayscale image as a PNG file.
func WriteGrayPNG(img *imgproc.Gray, path string) error {
	out := image.NewGray(image.Rect(0, 0, img.W, img.H))
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			v := img.At(x, y)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			out.SetGray(x, y, color.Gray{Y: uint8(v*255 + 0.5)})
		}
	}
	return encodePNG(out, path)
}

func encodePNG(img image.Image, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: create %s: %w", path, err)
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return fmt.Errorf("trace: encode %s: %w", path, err)
	}
	return f.Close()
}
