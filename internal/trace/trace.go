// Package trace generates the deterministic synthetic video clip used in
// place of the paper's pre-recorded 10 s, 30 FPS, 720p smartphone capture
// of a workplace environment. The scene contains the same object classes
// the paper describes — a monitor, a keyboard, and a table (plus a mug for
// additional texture) — rendered with stable per-object textures so SIFT
// features repeat across frames, and a slowly panning/zooming camera with
// per-frame sensor noise so consecutive frames differ realistically.
//
// Because the renderer is seeded, every experiment run processes exactly
// the same pixels, giving the run-to-run repeatability the paper obtained
// by replaying a recording. It also provides ground-truth object placement
// per frame, which the vision tests use to validate pose estimation.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/edge-mar/scatter/internal/vision/imgproc"
)

// Object identifiers in the workplace scene.
const (
	ObjectMonitor = iota
	ObjectKeyboard
	ObjectMug
	NumObjects
)

// ObjectName returns a human-readable object name.
func ObjectName(id int) string {
	switch id {
	case ObjectMonitor:
		return "monitor"
	case ObjectKeyboard:
		return "keyboard"
	case ObjectMug:
		return "mug"
	default:
		return fmt.Sprintf("object-%d", id)
	}
}

// Motion selects the camera-movement profile of the clip.
type Motion int

// Camera motion profiles.
const (
	// MotionSmooth is the default handheld drift: slow sinusoidal pan
	// and gentle zoom, matching the paper's recorded clip.
	MotionSmooth Motion = iota
	// MotionStatic locks the camera (tripod): every frame differs only
	// by sensor noise.
	MotionStatic
	// MotionShaky adds high-frequency hand tremor on top of the drift —
	// the harder tracking case of a walking user.
	MotionShaky
)

// Config controls clip generation. The zero value is completed by
// NewGenerator with the paper's parameters (1280×720, 30 FPS, 10 s).
type Config struct {
	W, H    int
	FPS     int
	Seconds int
	Seed    int64
	// Noise is the per-pixel additive sensor-noise amplitude in 8-bit
	// counts (default 3).
	Noise float64
	// Motion selects the camera profile (default MotionSmooth).
	Motion Motion
}

// Placement is the ground-truth location of an object in a frame: the
// object's reference image maps into the frame by scale then translation.
type Placement struct {
	ObjectID int
	// Scale and offset: frameX = OffX + Scale*refX, frameY = OffY + Scale*refY.
	Scale      float64
	OffX, OffY float64
	// Visible reports whether the object is at least partly in frame.
	Visible bool
}

// ReferenceImage is a canonical (frontal, unoccluded) view of one object,
// used to build the recognition database.
type ReferenceImage struct {
	ObjectID int
	Name     string
	Img      *imgproc.Gray
}

// object describes one scene object in world coordinates.
type object struct {
	id         int
	x, y, w, h float64 // world-space rectangle
	texSeed    int64
}

// Generator renders the clip. It is safe for concurrent use after
// construction: rendering reads only immutable state plus per-call RNGs.
type Generator struct {
	cfg     Config
	objects []object
}

// NewGenerator builds a generator, applying defaults for unset fields.
func NewGenerator(cfg Config) *Generator {
	if cfg.W <= 0 {
		cfg.W = 1280
	}
	if cfg.H <= 0 {
		cfg.H = 720
	}
	if cfg.FPS <= 0 {
		cfg.FPS = 30
	}
	if cfg.Seconds <= 0 {
		cfg.Seconds = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Noise == 0 {
		cfg.Noise = 3
	}
	// World space spans [0, 1000] × [0, 600]; objects sized relative to it.
	g := &Generator{cfg: cfg}
	g.objects = []object{
		{id: ObjectMonitor, x: 280, y: 80, w: 380, h: 240, texSeed: cfg.Seed*31 + 1},
		{id: ObjectKeyboard, x: 300, y: 380, w: 340, h: 120, texSeed: cfg.Seed*31 + 2},
		{id: ObjectMug, x: 720, y: 360, w: 90, h: 110, texSeed: cfg.Seed*31 + 3},
	}
	return g
}

// NumFrames returns the total frame count of the clip.
func (g *Generator) NumFrames() int { return g.cfg.FPS * g.cfg.Seconds }

// FPS returns the clip frame rate.
func (g *Generator) FPS() int { return g.cfg.FPS }

// Size returns the frame dimensions.
func (g *Generator) Size() (w, h int) { return g.cfg.W, g.cfg.H }

// camera returns the camera transform for frame i: world point (wx, wy)
// appears at pixel ((wx-cx)*zoom + W/2, (wy-cy)*zoom + H/2).
func (g *Generator) camera(i int) (cx, cy, zoom float64) {
	t := float64(i) / float64(g.cfg.FPS) // seconds
	switch g.cfg.Motion {
	case MotionStatic:
		return 500, 300, float64(g.cfg.W) / 1000
	case MotionShaky:
		// Handheld drift plus high-frequency tremor.
		cx = 500 + 60*math.Sin(2*math.Pi*t/8) + 8*math.Sin(2*math.Pi*t*4.7)
		cy = 300 + 30*math.Cos(2*math.Pi*t/11) + 6*math.Sin(2*math.Pi*t*6.1)
		zoom = float64(g.cfg.W) / 1000 * (1 + 0.08*math.Sin(2*math.Pi*t/9) + 0.01*math.Sin(2*math.Pi*t*5.3))
		return cx, cy, zoom
	default:
		// Slow sinusoidal pan around the scene center with gentle zoom,
		// as a handheld phone would drift.
		cx = 500 + 60*math.Sin(2*math.Pi*t/8)
		cy = 300 + 30*math.Cos(2*math.Pi*t/11)
		zoom = float64(g.cfg.W) / 1000 * (1 + 0.08*math.Sin(2*math.Pi*t/9))
		return cx, cy, zoom
	}
}

// texture returns the object's surface intensity (0..1) at normalized
// object coordinates (u, v in [0, 1]). Textures are procedural and
// deterministic per object so features are stable across frames.
func (o *object) texture(u, v float64) float64 {
	switch o.id {
	case ObjectMonitor:
		// Dark bezel with a bright screen containing window-like blocks.
		if u < 0.05 || u > 0.95 || v < 0.06 || v > 0.94 {
			return 0.08
		}
		// A bright "taskbar" of icon blocks along the bottom gives the
		// screen strong, distinctive corners.
		if v > 0.82 {
			gx := int(u * 16)
			return 0.2 + 0.75*hash2(o.texSeed*7+5, gx, 0)
		}
		// Screen content: a grid of "windows" with per-cell brightness
		// and dark borders between the cells (corner features).
		const cols, rows = 7.0, 4.0
		fu := (u - 0.05) / 0.90 * cols
		fv := (v - 0.06) / 0.76 * rows
		iu, iv := math.Floor(fu), math.Floor(fv)
		if fu-iu < 0.08 || fv-iv < 0.10 {
			return 0.15
		}
		h := hash2(o.texSeed, int(iu), int(iv))
		base := 0.35 + 0.6*h
		// Text-like horizontal striping inside each window.
		if int(v*48)%4 == 0 {
			base *= 0.7
		}
		return base
	case ObjectKeyboard:
		// Grid of keys with gaps and per-key brightness.
		cols, rows := 14.0, 5.0
		fu := u * cols
		fv := v * rows
		iu, iv := math.Floor(fu), math.Floor(fv)
		// Gap between keys.
		if fu-iu < 0.12 || fv-iv < 0.18 {
			return 0.1
		}
		return 0.45 + 0.45*hash2(o.texSeed, int(iu), int(iv))
	case ObjectMug:
		// Cylindrical shading with a patterned logo band (checker-like
		// blocks so the mug carries corner features).
		shade := 0.5 + 0.35*math.Sin(u*math.Pi)
		if v > 0.12 && v < 0.78 {
			gx := int(u * 9)
			gy := int((v - 0.12) / 0.66 * 6)
			return shade * (0.15 + 0.8*hash2(o.texSeed, gx, gy))
		}
		return 0.55 * shade
	default:
		return 0.5
	}
}

// hash2 is a deterministic hash to [0, 1) from a seed and 2-D cell index.
func hash2(seed int64, x, y int) float64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(x)*0xBF58476D1CE4E5B9 + uint64(y)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	return float64(h%10000) / 10000
}

// worldColor returns the RGB color of world point (wx, wy).
func (g *Generator) worldColor(wx, wy float64) (r, gc, b float64) {
	// Background: wall above y=330, wooden table below.
	if wy < 330 {
		v := 0.75 - 0.0002*wy
		r, gc, b = v*0.95, v*0.95, v
	} else {
		grain := 0.05 * math.Sin(wx*0.13+wy*0.02)
		v := 0.45 + grain
		r, gc, b = v*1.1, v*0.8, v*0.55
	}
	for i := range g.objects {
		o := &g.objects[i]
		if wx < o.x || wx >= o.x+o.w || wy < o.y || wy >= o.y+o.h {
			continue
		}
		u := (wx - o.x) / o.w
		v := (wy - o.y) / o.h
		t := o.texture(u, v)
		switch o.id {
		case ObjectMonitor:
			r, gc, b = t*0.85, t*0.9, t
		case ObjectKeyboard:
			r, gc, b = t, t, t*0.95
		case ObjectMug:
			r, gc, b = t, t*0.75, t*0.6
		}
	}
	return r, gc, b
}

// Frame renders frame i as an RGB image. It panics if i is out of range.
func (g *Generator) Frame(i int) *imgproc.RGB {
	if i < 0 || i >= g.NumFrames() {
		panic(fmt.Sprintf("trace: frame %d out of range [0, %d)", i, g.NumFrames()))
	}
	cx, cy, zoom := g.camera(i)
	img := imgproc.NewRGB(g.cfg.W, g.cfg.H)
	noise := rand.New(rand.NewSource(g.cfg.Seed ^ int64(i)*0x5DEECE66D))
	halfW := float64(g.cfg.W) / 2
	halfH := float64(g.cfg.H) / 2
	for y := 0; y < g.cfg.H; y++ {
		wy := (float64(y)-halfH)/zoom + cy
		for x := 0; x < g.cfg.W; x++ {
			wx := (float64(x)-halfW)/zoom + cx
			r, gc, b := g.worldColor(wx, wy)
			n := (noise.Float64() - 0.5) * 2 * g.cfg.Noise / 255
			img.Set(x, y, clamp8(r+n), clamp8(gc+n), clamp8(b+n))
		}
	}
	return img
}

// GrayFrame renders frame i and converts it to grayscale — what primary
// produces after its grayscaling step.
func (g *Generator) GrayFrame(i int) *imgproc.Gray {
	return imgproc.Grayscale(g.Frame(i))
}

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

// GroundTruth returns the placement of every scene object in frame i.
func (g *Generator) GroundTruth(i int) []Placement {
	cx, cy, zoom := g.camera(i)
	halfW := float64(g.cfg.W) / 2
	halfH := float64(g.cfg.H) / 2
	out := make([]Placement, 0, len(g.objects))
	for _, o := range g.objects {
		// Reference image has refScale pixels per world unit (see
		// ReferenceImages); composition gives frame = off + scale*ref.
		scale := zoom / refScale
		offX := (o.x-cx)*zoom + halfW
		offY := (o.y-cy)*zoom + halfH
		frameW := o.w * zoom
		frameH := o.h * zoom
		visible := offX+frameW > 0 && offX < float64(g.cfg.W) &&
			offY+frameH > 0 && offY < float64(g.cfg.H)
		out = append(out, Placement{
			ObjectID: o.id,
			Scale:    scale,
			OffX:     offX,
			OffY:     offY,
			Visible:  visible,
		})
	}
	return out
}

// refScale is the resolution of reference images in pixels per world unit.
const refScale = 0.45

// ReferenceImages renders the canonical training views of each object —
// the "reference images in the training dataset" that lsh/matching
// recognize against.
func (g *Generator) ReferenceImages() []ReferenceImage {
	out := make([]ReferenceImage, 0, len(g.objects))
	for i := range g.objects {
		o := &g.objects[i]
		w := int(math.Round(o.w * refScale))
		h := int(math.Round(o.h * refScale))
		if w < 8 {
			w = 8
		}
		if h < 8 {
			h = 8
		}
		img := imgproc.NewGray(w, h)
		for y := 0; y < h; y++ {
			v := float64(y) / float64(h)
			for x := 0; x < w; x++ {
				u := float64(x) / float64(w)
				img.Set(x, y, float32(o.texture(u, v)))
			}
		}
		out = append(out, ReferenceImage{ObjectID: o.id, Name: ObjectName(o.id), Img: img})
	}
	return out
}

// FrameBytes returns the nominal encoded size in bytes of a frame as it
// travels between scAtteR services. The paper reports ≈180 KB for the
// standard pipeline payload and ≈480 KB once sift's state rides inside
// the frame (scAtteR++).
func FrameBytes(stateless bool) int {
	if stateless {
		return 480 << 10
	}
	return 180 << 10
}
