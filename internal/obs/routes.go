package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"github.com/edge-mar/scatter/internal/obs/routestats"
)

// SetRouteSource installs the live route-table snapshot the registry
// exposes as scatter_route_* series and on /routes. The function is
// called on every scrape, so it should be cheap (routestats.Table.Digest
// is a lock-light atomic walk). A nil source removes the exposition.
func (r *Registry) SetRouteSource(fn func() []routestats.RouteDigest) {
	r.routeSrc.Store(routeSource{fn})
}

// routeSource wraps the snapshot func so atomic.Value always stores one
// concrete type (bare funcs of identical signature would still panic on
// nil stores).
type routeSource struct {
	fn func() []routestats.RouteDigest
}

// RouteDigests snapshots the installed route source, or nil when no
// router is publishing statistics.
func (r *Registry) RouteDigests() []routestats.RouteDigest {
	src, ok := r.routeSrc.Load().(routeSource)
	if !ok || src.fn == nil {
		return nil
	}
	return src.fn()
}

// writeTextRoutes renders the per-replica routing window as Prometheus
// text lines. States export as their rank (0 healthy … 3 ejected) so
// dashboards can alert on max(scatter_route_state) without string
// matching.
func writeTextRoutes(w io.Writer, digests []routestats.RouteDigest) {
	if len(digests) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE scatter_route_weight gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_route_state gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_route_latency_seconds gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_route_loss_ratio gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_route_inflight gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_route_sent_total counter\n")
	fmt.Fprintf(w, "# TYPE scatter_route_acked_total counter\n")
	fmt.Fprintf(w, "# TYPE scatter_route_lost_total counter\n")
	fmt.Fprintf(w, "# TYPE scatter_route_send_errors_total counter\n")
	for _, d := range digests {
		label := fmt.Sprintf("{step=%q,replica=%q}", d.Step, d.Replica)
		fmt.Fprintf(w, "scatter_route_weight%s %g\n", label, d.Weight)
		fmt.Fprintf(w, "scatter_route_state%s %d\n", label, routestats.ParseState(d.State).Rank())
		fmt.Fprintf(w, "scatter_route_latency_seconds%s %g\n", label,
			(time.Duration(d.LatencyMicros) * time.Microsecond).Seconds())
		fmt.Fprintf(w, "scatter_route_loss_ratio%s %g\n", label, d.LossRatio)
		fmt.Fprintf(w, "scatter_route_inflight%s %d\n", label, d.Inflight)
		fmt.Fprintf(w, "scatter_route_sent_total%s %d\n", label, d.Sent)
		fmt.Fprintf(w, "scatter_route_acked_total%s %d\n", label, d.Acked)
		fmt.Fprintf(w, "scatter_route_lost_total%s %d\n", label, d.Lost)
		fmt.Fprintf(w, "scatter_route_send_errors_total%s %d\n", label, d.SendErrors)
	}
}

// WriteRouteTable renders the human-oriented /routes debug view: one
// aligned row per (step, replica) window.
func WriteRouteTable(w io.Writer, digests []routestats.RouteDigest) {
	if len(digests) == 0 {
		fmt.Fprintln(w, "no route statistics published")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STEP\tREPLICA\tSTATE\tWEIGHT\tLATENCY\tLOSS\tINFLIGHT\tSENT\tACKED\tLOST\tSENDERR")
	for _, d := range digests {
		state := d.State
		if d.Cold {
			state += " (cold)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.4g\t%s\t%.3f\t%d\t%d\t%d\t%d\t%d\n",
			d.Step, d.Replica, state, d.Weight,
			time.Duration(d.LatencyMicros)*time.Microsecond,
			d.LossRatio, d.Inflight, d.Sent, d.Acked, d.Lost, d.SendErrors)
	}
	tw.Flush()
}
