package obs

import (
	"fmt"
	"io"
)

// ShardDigest is the live snapshot of the sharded reference database's
// scatter/gather path on one node: layout shape, fan-out legs issued,
// gathers completed (full and partial), shard responses dropped for
// missing the gather window, gathers abandoned below quorum, and the
// cumulative time spent waiting on gathers.
type ShardDigest struct {
	Shards           int    `json:"shards"`
	Replication      int    `json:"replication"`
	FanOuts          uint64 `json:"fan_outs"`
	Gathers          uint64 `json:"gathers"`
	PartialGathers   uint64 `json:"partial_gathers"`
	DroppedShards    uint64 `json:"dropped_shards"`
	BelowQuorum      uint64 `json:"below_quorum"`
	GatherWaitMicros uint64 `json:"gather_wait_us"`
}

// SetShardSource installs the snapshot function the registry exposes as
// scatter_shard_* series and in /metrics.json. Called on every scrape;
// it should be cheap (counter loads). A nil source removes the
// exposition.
func (r *Registry) SetShardSource(fn func() ShardDigest) {
	r.shardSrc.Store(shardSource{fn})
}

// shardSource wraps the snapshot func so atomic.Value always stores one
// concrete type.
type shardSource struct {
	fn func() ShardDigest
}

// ShardDigest snapshots the installed shard source; ok is false when no
// scatter/gather path is publishing.
func (r *Registry) ShardDigest() (ShardDigest, bool) {
	src, ok := r.shardSrc.Load().(shardSource)
	if !ok || src.fn == nil {
		return ShardDigest{}, false
	}
	return src.fn(), true
}

// writeTextShard renders the scatter/gather snapshot as Prometheus text
// lines.
func writeTextShard(w io.Writer, d ShardDigest) {
	fmt.Fprintf(w, "# TYPE scatter_shard_count gauge\n")
	fmt.Fprintf(w, "scatter_shard_count %d\n", d.Shards)
	fmt.Fprintf(w, "# TYPE scatter_shard_replication gauge\n")
	fmt.Fprintf(w, "scatter_shard_replication %d\n", d.Replication)
	fmt.Fprintf(w, "# TYPE scatter_shard_fanout_total counter\n")
	fmt.Fprintf(w, "scatter_shard_fanout_total %d\n", d.FanOuts)
	fmt.Fprintf(w, "# TYPE scatter_shard_gathers_total counter\n")
	fmt.Fprintf(w, "scatter_shard_gathers_total %d\n", d.Gathers)
	fmt.Fprintf(w, "# TYPE scatter_shard_partial_gathers_total counter\n")
	fmt.Fprintf(w, "scatter_shard_partial_gathers_total %d\n", d.PartialGathers)
	fmt.Fprintf(w, "# TYPE scatter_shard_dropped_total counter\n")
	fmt.Fprintf(w, "scatter_shard_dropped_total %d\n", d.DroppedShards)
	fmt.Fprintf(w, "# TYPE scatter_shard_below_quorum_total counter\n")
	fmt.Fprintf(w, "scatter_shard_below_quorum_total %d\n", d.BelowQuorum)
	fmt.Fprintf(w, "# TYPE scatter_shard_gather_wait_seconds_total counter\n")
	fmt.Fprintf(w, "scatter_shard_gather_wait_seconds_total %g\n", float64(d.GatherWaitMicros)/1e6)
}
