package obs

import (
	"fmt"
	"io"
)

// AdmissionServiceDigest is one service's admission-control state on a
// node: the enforced verdict and how many frames it has refused.
type AdmissionServiceDigest struct {
	Service string `json:"service"`
	State   string `json:"state"` // "admit" | "degrade" | "reject"
	Drops   uint64 `json:"drops"`
}

// AdmissionDigest is the live snapshot of sidecar admission enforcement
// on one node, exposed as scatter_admission_* and in /metrics.json.
type AdmissionDigest struct {
	Services []AdmissionServiceDigest `json:"services"`
}

// SetAdmissionSource installs the snapshot function the registry exposes
// as scatter_admission_* series. Called on every scrape; it should be
// cheap. A nil source removes the exposition.
func (r *Registry) SetAdmissionSource(fn func() AdmissionDigest) {
	r.admissionSrc.Store(admissionSource{fn})
}

// admissionSource wraps the snapshot func so atomic.Value always stores
// one concrete type.
type admissionSource struct {
	fn func() AdmissionDigest
}

// AdmissionDigest snapshots the installed admission source; ok is false
// when no enforcement point is publishing.
func (r *Registry) AdmissionDigest() (AdmissionDigest, bool) {
	src, ok := r.admissionSrc.Load().(admissionSource)
	if !ok || src.fn == nil {
		return AdmissionDigest{}, false
	}
	return src.fn(), true
}

// admitStateRank orders verdict severity for gauge exposition:
// admit=0, degrade=1, reject=2 (unknown states read as admit).
func admitStateRank(state string) int {
	switch state {
	case "degrade":
		return 1
	case "reject":
		return 2
	default:
		return 0
	}
}

// writeTextAdmission renders the admission snapshot as Prometheus text
// lines.
func writeTextAdmission(w io.Writer, d AdmissionDigest) {
	if len(d.Services) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE scatter_admission_state gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_admission_drops_total counter\n")
	for _, s := range d.Services {
		l := fmt.Sprintf("{service=%q}", s.Service)
		fmt.Fprintf(w, "scatter_admission_state%s %d\n", l, admitStateRank(s.State))
		fmt.Fprintf(w, "scatter_admission_drops_total%s %d\n", l, s.Drops)
	}
}

// AutoscaleServiceDigest is one service as the autoscale control loop
// sees it: live replica count, the last windowed distress ratio, and the
// admission verdict in force.
type AutoscaleServiceDigest struct {
	Service    string  `json:"service"`
	Replicas   int     `json:"replicas"`
	DropRatio  float64 `json:"drop_ratio"`
	P95Micros  uint64  `json:"p95_us"`
	Admit      string  `json:"admit"`
	LastReason string  `json:"last_reason,omitempty"`
}

// AutoscaleDigest is the control loop's self-exposition: which policy
// runs, how often it has evaluated and acted, and the per-service view
// it last decided on. The orchestrator serves it at /api/v1/autoscaler
// and as scatter_autoscale_* on /metrics.
type AutoscaleDigest struct {
	Policy      string                   `json:"policy"`
	Evaluations uint64                   `json:"evaluations"`
	ScaleUps    uint64                   `json:"scale_ups"`
	ScaleDowns  uint64                   `json:"scale_downs"`
	Escalations uint64                   `json:"escalations"` // admission verdict raises
	Relaxations uint64                   `json:"relaxations"` // admission verdict drops
	Services    []AutoscaleServiceDigest `json:"services,omitempty"`
}

// WriteAutoscaleText renders the autoscale snapshot as Prometheus text
// lines — shared by the orchestrator's /metrics and any node-local
// exposition of an embedded control loop.
func WriteAutoscaleText(w io.Writer, d AutoscaleDigest) {
	fmt.Fprintf(w, "# TYPE scatter_autoscale_evaluations_total counter\n")
	fmt.Fprintf(w, "scatter_autoscale_evaluations_total{policy=%q} %d\n", d.Policy, d.Evaluations)
	fmt.Fprintf(w, "# TYPE scatter_autoscale_scale_ups_total counter\n")
	fmt.Fprintf(w, "scatter_autoscale_scale_ups_total{policy=%q} %d\n", d.Policy, d.ScaleUps)
	fmt.Fprintf(w, "# TYPE scatter_autoscale_scale_downs_total counter\n")
	fmt.Fprintf(w, "scatter_autoscale_scale_downs_total{policy=%q} %d\n", d.Policy, d.ScaleDowns)
	fmt.Fprintf(w, "# TYPE scatter_autoscale_admission_escalations_total counter\n")
	fmt.Fprintf(w, "scatter_autoscale_admission_escalations_total{policy=%q} %d\n", d.Policy, d.Escalations)
	fmt.Fprintf(w, "# TYPE scatter_autoscale_admission_relaxations_total counter\n")
	fmt.Fprintf(w, "scatter_autoscale_admission_relaxations_total{policy=%q} %d\n", d.Policy, d.Relaxations)
	if len(d.Services) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE scatter_autoscale_replicas gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_autoscale_drop_ratio gauge\n")
	fmt.Fprintf(w, "# TYPE scatter_autoscale_admit_state gauge\n")
	for _, s := range d.Services {
		l := fmt.Sprintf("{service=%q}", s.Service)
		fmt.Fprintf(w, "scatter_autoscale_replicas%s %d\n", l, s.Replicas)
		fmt.Fprintf(w, "scatter_autoscale_drop_ratio%s %g\n", l, s.DropRatio)
		fmt.Fprintf(w, "scatter_autoscale_admit_state%s %d\n", l, admitStateRank(s.Admit))
	}
}
