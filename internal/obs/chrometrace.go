package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace_event JSON export: each host becomes a trace "process",
// each service on it a "thread", and every span renders as two complete
// ("X") slices — the queue-wait segment and the processing segment — so
// Perfetto shows exactly where a frame spent its 100 ms budget. Flow
// arrows stitch one frame's slices across services and hosts.

// traceEvent is one entry of the trace_event array format.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeTrace writes the spans as Chrome trace_event JSON (an array,
// loadable by Perfetto or chrome://tracing).
func WriteChromeTrace(w io.Writer, spans []Span) error {
	// Stable pid per host and tid per (host, service), in pipeline order
	// so tracks read primary→…→matching top to bottom.
	hosts := map[string]int{}
	tracks := map[string]int{}
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Host != sorted[j].Host {
			return sorted[i].Host < sorted[j].Host
		}
		return sorted[i].Step < sorted[j].Step
	})
	var events []traceEvent
	for _, s := range sorted {
		pid, ok := hosts[s.Host]
		if !ok {
			pid = len(hosts) + 1
			hosts[s.Host] = pid
			events = append(events, traceEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": s.Host},
			})
		}
		trackKey := s.Host + "/" + s.Service
		tid, ok := tracks[trackKey]
		if !ok {
			tid = int(s.Step) + 1
			tracks[trackKey] = tid
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": s.Service},
			})
		}
	}
	// Emit slices in time order within each frame so flow bindings attach
	// to enclosing slices.
	byTime := append([]Span(nil), spans...)
	sort.SliceStable(byTime, func(i, j int) bool { return byTime[i].StartAt < byTime[j].StartAt })
	frameSeen := map[string]bool{}
	for _, s := range byTime {
		pid := hosts[s.Host]
		tid := tracks[s.Host+"/"+s.Service]
		args := map[string]any{
			"client":  s.ClientID,
			"frame":   s.FrameNo,
			"outcome": s.Outcome.String(),
		}
		if s.Queue > 0 {
			events = append(events, traceEvent{
				Name: s.Service + " queue", Cat: "queue", Ph: "X",
				Ts: us(s.EnqueueAt), Dur: us(s.Queue), Pid: pid, Tid: tid, Args: args,
			})
		}
		if s.EndAt > s.StartAt || s.Outcome == OutcomeOK {
			events = append(events, traceEvent{
				Name: s.Service, Cat: "proc " + s.Outcome.String(), Ph: "X",
				Ts: us(s.StartAt), Dur: us(s.EndAt - s.StartAt), Pid: pid, Tid: tid, Args: args,
			})
		} else {
			// A drop with no processing renders as an instant event.
			events = append(events, traceEvent{
				Name: s.Service + " " + s.Outcome.String(), Cat: "drop", Ph: "i",
				Ts: us(s.EndAt), Pid: pid, Tid: tid, Args: args,
			})
		}
		// Flow arrows: one chain per (client, frame), started at the first
		// span, stepped at each subsequent one.
		flowID := fmt.Sprintf("f%d-%d", s.ClientID, s.FrameNo)
		ph := "t"
		if !frameSeen[flowID] {
			frameSeen[flowID] = true
			ph = "s"
		}
		ts := s.StartAt
		if s.EndAt > s.StartAt {
			ts = s.StartAt + (s.EndAt-s.StartAt)/2
		}
		events = append(events, traceEvent{
			Name: "frame", Cat: "frame", Ph: ph, ID: flowID,
			Ts: us(ts), Pid: pid, Tid: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
