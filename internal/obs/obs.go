// Package obs is the observability layer shared by the simulated and the
// real scAtteR runtime: per-frame span tracing (where a frame spent its
// latency budget, stage by stage), a live lock-free metrics registry
// (counters, gauges, fixed-bucket latency histograms with percentile
// extraction), HTTP exposition of both, and a Chrome trace_event exporter
// so a frame's journey across primary→sift→encoding→lsh→matching renders
// in Perfetto.
//
// The paper's characterization correlates QoS with per-service queueing
// and hardware utilization; its §6 proposal needs those signals *live*,
// not as a run-end digest. metrics.Collector stays the single-threaded
// run-end accumulator; obs.Registry is its concurrent, always-on
// counterpart, and obs.Span is the per-frame record that generalizes the
// scAtteR++ sidecar analytics to both modes and all five stages.
package obs

import (
	"sync"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

// Outcome classifies how a span ended.
type Outcome uint8

// Span outcomes. The drop outcomes mirror metrics.DropReason so spans and
// run-end counters tell one story.
const (
	OutcomeOK        Outcome = iota // processed and forwarded/delivered
	OutcomeBusy                     // dropped at a busy service (scAtteR)
	OutcomeOverflow                 // sidecar queue full (scAtteR++)
	OutcomeThreshold                // sidecar latency threshold exceeded
	OutcomeTimeout                  // dependency wait timed out
	OutcomeError                    // processing error (real runtime)
	OutcomeShutdown                 // abandoned in-queue at worker shutdown
	OutcomeTransport                // lost below the worker (reassembly drop)
	OutcomeAdmission                // refused by admission control at ingress
)

// String names the outcome for exposition and trace args.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeBusy:
		return "drop-busy"
	case OutcomeOverflow:
		return "drop-overflow"
	case OutcomeThreshold:
		return "drop-threshold"
	case OutcomeTimeout:
		return "drop-timeout"
	case OutcomeError:
		return "error"
	case OutcomeShutdown:
		return "drop-shutdown"
	case OutcomeTransport:
		return "drop-transport"
	case OutcomeAdmission:
		return "drop-admission"
	default:
		return "unknown"
	}
}

// Dropped reports whether the outcome is terminal for the frame at this
// service.
func (o Outcome) Dropped() bool { return o != OutcomeOK }

// Span is one service's handling of one frame: when the frame reached
// the service ingress (EnqueueAt), when processing began (StartAt) and
// ended (EndAt), the derived queue-wait and processing segments, and how
// it ended. Timestamps are offsets from the run origin — virtual time in
// the simulator, wall-clock-since-start in the real runtime — so spans
// from either path feed the same exporters.
type Span struct {
	Service   string        `json:"service"`
	Host      string        `json:"host"`
	Step      wire.Step     `json:"step"`
	ClientID  uint32        `json:"client"`
	FrameNo   uint64        `json:"frame"`
	EnqueueAt time.Duration `json:"enqueue_ns"`
	StartAt   time.Duration `json:"start_ns"`
	EndAt     time.Duration `json:"end_ns"`
	Queue     time.Duration `json:"queue_ns"`
	Proc      time.Duration `json:"proc_ns"`
	Outcome   Outcome       `json:"outcome"`
}

// DefaultMaxSpans bounds a Recorder's memory: at 30 FPS × 5 stages a
// client produces 150 spans/s, so the default holds several minutes of a
// small deployment.
const DefaultMaxSpans = 1 << 20

// Recorder collects spans. It is safe for concurrent use; a nil Recorder
// is a valid no-op sink, so instrumented code paths need no branching.
type Recorder struct {
	mu      sync.Mutex
	spans   []Span
	max     int
	dropped uint64
}

// NewRecorder returns a recorder bounded to max spans (DefaultMaxSpans
// when max <= 0). Spans past the bound are counted, not stored.
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Recorder{max: max}
}

// Record appends one span. Safe on a nil receiver.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.spans) >= r.max {
		r.dropped++
	} else {
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans. Safe on a nil receiver.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Len returns the number of stored spans. Safe on a nil receiver.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped returns how many spans exceeded the bound. Safe on a nil
// receiver.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all spans. Safe on a nil receiver.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.dropped = 0
	r.mu.Unlock()
}

// FromWire converts the span block a frame carried across hosts into obs
// spans — the real runtime's path from wire envelope to exporters.
func FromWire(clientID uint32, frameNo uint64, recs []wire.SpanRecord) []Span {
	out := make([]Span, 0, len(recs))
	for _, rec := range recs {
		enq := time.Duration(rec.EnqueueMicros) * time.Microsecond
		start := time.Duration(rec.StartMicros) * time.Microsecond
		end := time.Duration(rec.EndMicros) * time.Microsecond
		out = append(out, Span{
			Service:   rec.Step.String(),
			Host:      rec.Host,
			Step:      rec.Step,
			ClientID:  clientID,
			FrameNo:   frameNo,
			EnqueueAt: enq,
			StartAt:   start,
			EndAt:     end,
			Queue:     start - enq,
			Proc:      end - start,
			Outcome:   Outcome(rec.Outcome),
		})
	}
	return out
}

// Normalize shifts all span timestamps so the earliest enqueue becomes
// zero, returning a new slice. Simulator spans already use run-relative
// virtual time; real-runtime spans carry absolute wall-clock micros, and
// normalizing them makes trace exports start at t=0 regardless of when
// the run happened.
func Normalize(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	origin := spans[0].EnqueueAt
	for _, s := range spans[1:] {
		if s.EnqueueAt < origin {
			origin = s.EnqueueAt
		}
	}
	out := make([]Span, len(spans))
	for i, s := range spans {
		s.EnqueueAt -= origin
		s.StartAt -= origin
		s.EndAt -= origin
		out[i] = s
	}
	return out
}
