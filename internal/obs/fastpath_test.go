package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFastPathExposition(t *testing.T) {
	reg := testRegistry()
	if _, ok := reg.FastPathDigest(); ok {
		t.Fatal("digest reported ok before a source was installed")
	}
	reg.SetFastPathSource(func() FastPathDigest {
		return FastPathDigest{Skips: 90, Fulls: 10, CacheHits: 7, CacheMisses: 3, CacheLen: 2, Clients: 4}
	})
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"scatter_fastpath_skips_total 90",
		"scatter_fastpath_fulls_total 10",
		"scatter_fastpath_cache_hits_total 7",
		"scatter_fastpath_cache_misses_total 3",
		"scatter_fastpath_cache_entries 2",
		"scatter_fastpath_clients 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, srv, "/metrics.json")
	if code != 200 {
		t.Fatalf("metrics.json status %d", code)
	}
	var snap struct {
		FastPath *FastPathDigest `json:"fastpath"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.FastPath == nil || snap.FastPath.Skips != 90 || snap.FastPath.Clients != 4 {
		t.Errorf("metrics.json fastpath = %+v", snap.FastPath)
	}
}

func TestFastPathExpositionAbsentWithoutSource(t *testing.T) {
	srv := httptest.NewServer(Handler(testRegistry(), nil))
	defer srv.Close()
	_, body := get(t, srv, "/metrics")
	if strings.Contains(body, "scatter_fastpath") {
		t.Error("fast-path series exposed without a source")
	}
	_, body = get(t, srv, "/metrics.json")
	if strings.Contains(body, "fastpath") {
		t.Error("metrics.json carries fastpath without a source")
	}
}
