package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantileKnownDistribution(t *testing.T) {
	var h Histogram
	// 100 samples at 1ms, 100 at 10ms: p50 falls in the 1ms bucket
	// region, p95/p99 in the 10ms region.
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	if got := h.Count(); got != 200 {
		t.Fatalf("count = %d, want 200", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 400*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want within the 1ms bucket [0.4ms, 2ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 5*time.Millisecond || p99 > 13*time.Millisecond {
		t.Errorf("p99 = %v, want within the 10ms bucket [5ms, 13ms]", p99)
	}
	if h.Mean() != (100*time.Millisecond+1000*time.Millisecond)/200 {
		t.Errorf("mean = %v, want 5.5ms", h.Mean())
	}
}

func TestHistogramQuantileEmptyAndBounds(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.95); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	h.Observe(-time.Second) // clamped to zero
	if got := h.Quantile(1.5); got > 50*time.Microsecond {
		t.Errorf("clamped sample quantile = %v, want within first bucket", got)
	}
	h.Observe(time.Hour) // overflow bucket
	if got := h.Quantile(1); got <= 0 {
		t.Errorf("overflow quantile = %v, want positive lower bound", got)
	}
}

func TestHistogramBucketMonotonicity(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{
		10 * time.Microsecond, time.Millisecond, 7 * time.Millisecond,
		40 * time.Millisecond, 2 * time.Second,
	} {
		h.Observe(d)
	}
	q := []time.Duration{h.Quantile(0.1), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)}
	for i := 1; i < len(q); i++ {
		if q[i] < q[i-1] {
			t.Fatalf("quantiles not monotone: %v", q)
		}
	}
}

func TestRegistryDigest(t *testing.T) {
	reg := NewRegistry()
	m := reg.Service("sift")
	m.Arrived.Add(10)
	m.Dropped.Add(2)
	for i := 0; i < 8; i++ {
		m.RecordProcessed(time.Millisecond, 4*time.Millisecond)
	}
	m.QueueLen.Set(3)
	digest := reg.Digest()
	if len(digest) != 1 {
		t.Fatalf("digest has %d services, want 1", len(digest))
	}
	d := digest[0]
	if d.Service != "sift" || d.Arrived != 10 || d.Processed != 8 || d.Dropped != 2 {
		t.Errorf("digest counters wrong: %+v", d)
	}
	if d.DropRatio != 0.2 {
		t.Errorf("drop ratio = %g, want 0.2", d.DropRatio)
	}
	if d.QueueLen != 3 {
		t.Errorf("queue len = %d, want 3", d.QueueLen)
	}
	// Service latency is 5ms; the estimate must be within the containing
	// bucket (3.2ms, 6.4ms].
	p95 := time.Duration(d.P95Micros) * time.Microsecond
	if p95 <= 3200*time.Microsecond || p95 > 6400*time.Microsecond {
		t.Errorf("p95 = %v, want within (3.2ms, 6.4ms]", p95)
	}
}

// TestRegistryConcurrentStress exercises the registry from many
// goroutines simultaneously; run with -race to verify the lock-free
// instruments and the service map are safe.
func TestRegistryConcurrentStress(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 12
	const perG = 2000
	services := []string{"primary", "sift", "encoding", "lsh", "matching"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := services[(g+i)%len(services)]
				m := reg.Service(name)
				m.Arrived.Inc()
				m.RecordProcessed(time.Duration(i%5)*time.Millisecond,
					time.Duration(1+i%7)*time.Millisecond)
				if i%10 == 0 {
					m.Dropped.Inc()
				}
				m.QueueLen.Set(int64(i % 8))
				if i%100 == 0 {
					_ = reg.Digest() // concurrent readers
				}
			}
		}(g)
	}
	wg.Wait()
	var arrived, processed uint64
	for _, d := range reg.Digest() {
		arrived += d.Arrived
		processed += d.Processed
	}
	want := uint64(goroutines * perG)
	if arrived != want || processed != want {
		t.Errorf("arrived=%d processed=%d, want %d each", arrived, processed, want)
	}
}

func TestRecorderBoundAndNil(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Span{FrameNo: uint64(i)})
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d, want 2 and 3", r.Len(), r.Dropped())
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("reset left len=%d dropped=%d", r.Len(), r.Dropped())
	}

	var nilRec *Recorder
	nilRec.Record(Span{}) // must not panic
	if nilRec.Spans() != nil || nilRec.Len() != 0 || nilRec.Dropped() != 0 {
		t.Error("nil recorder should be a no-op sink")
	}
	nilRec.Reset()
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Span{ClientID: uint32(g), FrameNo: uint64(i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 4000 {
		t.Errorf("len = %d, want 4000", r.Len())
	}
}
