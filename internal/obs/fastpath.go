package obs

import (
	"fmt"
	"io"
)

// FastPathDigest is the live snapshot of the tracker-gated recognition
// fast path on one node: frames answered from the gate vs full
// recognitions, the shared recognition cache's hit/miss counters and
// occupancy, and the number of clients with a live verdict.
type FastPathDigest struct {
	Skips       uint64 `json:"skips"`
	Fulls       uint64 `json:"fulls"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	CacheLen    int    `json:"cache_len"`
	Clients     int    `json:"clients"`
}

// SetFastPathSource installs the snapshot function the registry exposes
// as scatter_fastpath_* series and in /metrics.json. Called on every
// scrape; it should be cheap (counter loads plus two short map locks). A
// nil source removes the exposition.
func (r *Registry) SetFastPathSource(fn func() FastPathDigest) {
	r.fastPathSrc.Store(fastPathSource{fn})
}

// fastPathSource wraps the snapshot func so atomic.Value always stores
// one concrete type.
type fastPathSource struct {
	fn func() FastPathDigest
}

// FastPathDigest snapshots the installed fast-path source; ok is false
// when no gate is publishing.
func (r *Registry) FastPathDigest() (FastPathDigest, bool) {
	src, ok := r.fastPathSrc.Load().(fastPathSource)
	if !ok || src.fn == nil {
		return FastPathDigest{}, false
	}
	return src.fn(), true
}

// writeTextFastPath renders the fast-path snapshot as Prometheus text
// lines.
func writeTextFastPath(w io.Writer, d FastPathDigest) {
	fmt.Fprintf(w, "# TYPE scatter_fastpath_skips_total counter\n")
	fmt.Fprintf(w, "scatter_fastpath_skips_total %d\n", d.Skips)
	fmt.Fprintf(w, "# TYPE scatter_fastpath_fulls_total counter\n")
	fmt.Fprintf(w, "scatter_fastpath_fulls_total %d\n", d.Fulls)
	fmt.Fprintf(w, "# TYPE scatter_fastpath_cache_hits_total counter\n")
	fmt.Fprintf(w, "scatter_fastpath_cache_hits_total %d\n", d.CacheHits)
	fmt.Fprintf(w, "# TYPE scatter_fastpath_cache_misses_total counter\n")
	fmt.Fprintf(w, "scatter_fastpath_cache_misses_total %d\n", d.CacheMisses)
	fmt.Fprintf(w, "# TYPE scatter_fastpath_cache_entries gauge\n")
	fmt.Fprintf(w, "scatter_fastpath_cache_entries %d\n", d.CacheLen)
	fmt.Fprintf(w, "# TYPE scatter_fastpath_clients gauge\n")
	fmt.Fprintf(w, "scatter_fastpath_clients %d\n", d.Clients)
}
