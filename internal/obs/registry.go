package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, held states).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histogram bucket layout: exponential upper bounds from 50 µs to ~26 s
// (doubling), chosen so the paper's 1–100 ms service latencies land in
// the well-resolved middle of the range. The last bucket is +Inf.
const histBuckets = 20

var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	d := 50 * time.Microsecond
	for i := 0; i < histBuckets-1; i++ {
		b[i] = d
		d *= 2
	}
	b[histBuckets-1] = 1<<63 - 1
	return b
}()

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation without locks. Quantiles are extracted by linear
// interpolation inside the bucket containing the target rank, so the
// error is bounded by the bucket resolution.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(histBuckets-1, func(i int) bool { return d <= histBounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Mean returns the average sample, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sumNs.Load()) / n)
}

// Quantile estimates the p-quantile (p in [0, 1]) from the bucket counts.
// Within the target bucket the estimate interpolates linearly between the
// bucket's bounds; the overflow bucket reports its lower bound.
func (h *Histogram) Quantile(p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Snapshot the buckets: concurrent Observes may land between loads,
	// but each bucket read is atomic and the total is recomputed from the
	// snapshot, so the estimate is internally consistent.
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum uint64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := histBounds[i]
			if i == histBuckets-1 {
				return lo // overflow bucket: no meaningful upper bound
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	return histBounds[histBuckets-2]
}

// Buckets returns a snapshot of (upper bound, count) pairs for
// exposition; the final bound is reported as zero meaning +Inf.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, histBuckets)
	for i := 0; i < histBuckets; i++ {
		bound := histBounds[i]
		if i == histBuckets-1 {
			bound = 0
		}
		out = append(out, BucketCount{UpperBound: bound, Count: h.buckets[i].Load()})
	}
	return out
}

// BucketCount is one histogram bucket in a snapshot.
type BucketCount struct {
	UpperBound time.Duration // zero means +Inf
	Count      uint64
}

// ServiceMetrics is the live per-service instrument set — the concurrent
// counterpart of metrics.ServiceStats, fed by the same hooks.
type ServiceMetrics struct {
	Arrived   Counter
	Processed Counter
	Dropped   Counter
	Errors    Counter
	// AdmissionDrops counts ingress frames refused by admission control.
	// Kept out of Dropped so the distress drop ratio — the autoscaler's
	// recovery signal — reflects the service, not the controller.
	AdmissionDrops Counter
	QueueLen       Gauge
	QueueLat       Histogram // time from ingress to processing start
	ProcLat        Histogram // processing time
	SvcLat         Histogram // queue + processing (the paper's service latency)

	// Micro-batching series (zero unless the service dispatches batches):
	// Batches counts dispatches, BatchFrames the frames they carried, so
	// BatchFrames/Batches is the realized mean batch size. BatchWait is
	// how long the batch former held its oldest frame before dispatch,
	// and BatchSize is the size of the most recent dispatch.
	Batches     Counter
	BatchFrames Counter
	BatchWait   Histogram
	BatchSize   Gauge
}

// RecordProcessed updates every instrument for one completed execution.
func (m *ServiceMetrics) RecordProcessed(queue, proc time.Duration) {
	m.Processed.Inc()
	m.QueueLat.Observe(queue)
	m.ProcLat.Observe(proc)
	m.SvcLat.Observe(queue + proc)
}

// RecordBatch updates the batching series for one dispatch of size
// frames whose oldest member waited wait in the former.
func (m *ServiceMetrics) RecordBatch(size int, wait time.Duration) {
	m.Batches.Inc()
	m.BatchFrames.Add(uint64(size))
	m.BatchWait.Observe(wait)
	m.BatchSize.Set(int64(size))
}

// Registry is a live, concurrency-safe metrics registry: one
// ServiceMetrics per service name plus registry-level counters. Lookups
// after the first use a read lock; all instrument operations are atomic.
type Registry struct {
	mu       sync.RWMutex
	services map[string]*ServiceMetrics
	start    time.Time

	FramesSent      Counter
	FramesDelivered Counter

	// routeSrc holds the installed routeSource (SetRouteSource); nil-fn
	// until a stats-driven router starts publishing.
	routeSrc atomic.Value
	// fastPathSrc holds the installed fastPathSource
	// (SetFastPathSource); nil-fn until a fast-path gate is wired in.
	fastPathSrc atomic.Value
	// admissionSrc holds the installed admissionSource
	// (SetAdmissionSource); nil-fn until an admission enforcement point
	// is wired in.
	admissionSrc atomic.Value
	// shardSrc holds the installed shardSource (SetShardSource); nil-fn
	// until a sharded reference database is wired in.
	shardSrc atomic.Value
}

// NewRegistry returns an empty registry anchored at now.
func NewRegistry() *Registry {
	return &Registry{services: make(map[string]*ServiceMetrics), start: time.Now()}
}

// Start returns the registry's creation time (the run origin real-mode
// spans are offset from).
func (r *Registry) Start() time.Time { return r.start }

// Since returns the offset of t from the run origin.
func (r *Registry) Since(t time.Time) time.Duration { return t.Sub(r.start) }

// Service returns the instrument set for name, creating it on first use.
// Safe for concurrent use.
func (r *Registry) Service(name string) *ServiceMetrics {
	r.mu.RLock()
	m, ok := r.services[name]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.services[name]; ok {
		return m
	}
	m = &ServiceMetrics{}
	r.services[name] = m
	return m
}

// ServiceNames returns the registered service names, sorted.
func (r *Registry) ServiceNames() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.services))
	for name := range r.services {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ServiceDigest is one service's live summary — the registry view that
// rides orchestrator heartbeats so the application-aware scheduler reads
// drop ratios and tail latencies without waiting for run end.
type ServiceDigest struct {
	Service   string  `json:"service"`
	Arrived   uint64  `json:"arrived"`
	Processed uint64  `json:"processed"`
	Dropped   uint64  `json:"dropped"`
	Errors    uint64  `json:"errors"`
	DropRatio float64 `json:"drop_ratio"`
	// AdmissionDrops counts admission-control refusals, excluded from
	// Dropped and DropRatio.
	AdmissionDrops uint64 `json:"admission_drops,omitempty"`
	QueueLen       int64  `json:"queue_len"`
	P50Micros      uint64 `json:"p50_us"` // service latency percentiles
	P95Micros      uint64 `json:"p95_us"`
	P99Micros      uint64 `json:"p99_us"`
	// Batching summary: realized mean batch size and mean former wait.
	Batches        uint64  `json:"batches,omitempty"`
	BatchFrames    uint64  `json:"batch_frames,omitempty"`
	MeanBatch      float64 `json:"mean_batch,omitempty"`
	BatchWaitMicro uint64  `json:"batch_wait_us,omitempty"`
}

// Digest snapshots every service, sorted by name.
func (r *Registry) Digest() []ServiceDigest {
	names := r.ServiceNames()
	out := make([]ServiceDigest, 0, len(names))
	for _, name := range names {
		m := r.Service(name)
		d := ServiceDigest{
			Service:        name,
			Arrived:        m.Arrived.Value(),
			Processed:      m.Processed.Value(),
			Dropped:        m.Dropped.Value(),
			Errors:         m.Errors.Value(),
			AdmissionDrops: m.AdmissionDrops.Value(),
			QueueLen:       m.QueueLen.Value(),
			P50Micros:      uint64(m.SvcLat.Quantile(0.50) / time.Microsecond),
			P95Micros:      uint64(m.SvcLat.Quantile(0.95) / time.Microsecond),
			P99Micros:      uint64(m.SvcLat.Quantile(0.99) / time.Microsecond),
		}
		if d.Arrived > 0 {
			d.DropRatio = float64(d.Dropped) / float64(d.Arrived)
		}
		d.Batches = m.Batches.Value()
		d.BatchFrames = m.BatchFrames.Value()
		if d.Batches > 0 {
			d.MeanBatch = float64(d.BatchFrames) / float64(d.Batches)
			d.BatchWaitMicro = uint64(m.BatchWait.Mean() / time.Microsecond)
		}
		out = append(out, d)
	}
	return out
}
