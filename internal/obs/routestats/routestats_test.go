package routestats

import (
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

// testClock is a manually advanced nanosecond clock.
type testClock struct{ now int64 }

func (c *testClock) Now() int64              { return c.now }
func (c *testClock) Advance(d time.Duration) { c.now += int64(d) }

func newTestTable(clk *testClock, over func(*Config)) *Table {
	cfg := Config{
		Alpha:              0.5,
		AckTimeout:         100 * time.Millisecond,
		MinSamples:         4,
		DegradeLoss:        0.1,
		EjectLoss:          0.6,
		EjectFailures:      5,
		Probation:          time.Second,
		ProbationSuccesses: 3,
		ProbeEvery:         8,
		Seed:               42,
		Now:                clk.Now,
	}
	if over != nil {
		over(&cfg)
	}
	return New(cfg)
}

// warm feeds each replica of step enough successes to clear MinSamples.
func warm(t *Table, step wire.Step, lat map[string]time.Duration) {
	set := t.sets[step].Load()
	for _, r := range set.replicas {
		d := time.Millisecond
		if lat != nil {
			if v, ok := lat[r.addr]; ok {
				d = v
			}
		}
		for i := uint64(0); i < t.cfg.MinSamples; i++ {
			r.Begin()
			r.Outcome(d, true)
		}
	}
}

func TestPickDeclinesWhileColdOrEmpty(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	if _, _, ok := tab.Pick(wire.StepSIFT); ok {
		t.Fatal("pick succeeded with no replica set")
	}
	tab.SetReplicas(wire.StepSIFT, []string{"a", "b"})
	if _, _, ok := tab.Pick(wire.StepSIFT); ok {
		t.Fatal("pick succeeded while cold")
	}
	// Warm only one replica: the step must stay in fallback.
	ra := tab.Find(wire.StepSIFT, "a")
	for i := 0; i < 10; i++ {
		ra.Begin()
		ra.Outcome(time.Millisecond, true)
	}
	if _, _, ok := tab.Pick(wire.StepSIFT); ok {
		t.Fatal("pick succeeded with one cold replica")
	}
	warm(tab, wire.StepSIFT, nil)
	if _, _, ok := tab.Pick(wire.StepSIFT); !ok {
		t.Fatal("pick declined after warm-up")
	}
}

func TestP2CPrefersLowerLatency(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"fast", "slow"})
	warm(tab, wire.StepSIFT, map[string]time.Duration{
		"fast": time.Millisecond,
		"slow": 80 * time.Millisecond,
	})
	counts := map[string]int{}
	for i := 0; i < 200; i++ {
		r, _, ok := tab.Pick(wire.StepSIFT)
		if !ok {
			t.Fatal("pick declined")
		}
		counts[r.Addr()]++
	}
	// With two distinct candidates every comparison is fast-vs-slow, so
	// the slow replica only sees probe traffic (none here: both healthy).
	if counts["fast"] < 190 {
		t.Fatalf("fast replica got %d/200 picks, want ≥190 (counts=%v)", counts["fast"], counts)
	}
}

func TestLossDegradesAndSheds(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"sick", "ok"})
	warm(tab, wire.StepSIFT, nil)
	sick := tab.Find(wire.StepSIFT, "sick")
	// Two lost frames at alpha 0.5 push the loss EWMA to 0.75 → degraded
	// would be instant, 0.75 ≥ EjectLoss 0.6 → ejected. Use one loss:
	// EWMA 0.5 < 0.6 but ≥ DegradeLoss → degraded.
	sick.Begin()
	sick.Outcome(0, false)
	if got := sick.State(); got != StateDegraded {
		t.Fatalf("state after one loss = %v, want degraded", got)
	}
	counts := map[string]int{}
	for i := 0; i < 160; i++ {
		r, _, ok := tab.Pick(wire.StepSIFT)
		if !ok {
			t.Fatal("pick declined")
		}
		counts[r.Addr()]++
	}
	// Degraded replica should only see probe ticks (every 8th pick).
	if counts["sick"] > 160/8+2 {
		t.Fatalf("degraded replica got %d/160 picks, want ≤ probe share (counts=%v)", counts["sick"], counts)
	}
	if counts["sick"] == 0 {
		t.Fatal("probe ticks never reached the degraded replica")
	}
}

func TestEjectionProbationReadmission(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"r0", "r1"})
	warm(tab, wire.StepSIFT, nil)
	r0 := tab.Find(wire.StepSIFT, "r0")
	for i := 0; i < 6; i++ { // EjectFailures=5
		r0.Begin()
		r0.Outcome(0, false)
	}
	if got := r0.State(); got != StateEjected {
		t.Fatalf("state after consecutive failures = %v, want ejected", got)
	}
	// While ejected (and not failed open — r1 is healthy) it gets no
	// traffic at all, probes included.
	for i := 0; i < 64; i++ {
		r, _, ok := tab.Pick(wire.StepSIFT)
		if !ok {
			t.Fatal("pick declined")
		}
		if r.Addr() == "r0" {
			t.Fatal("ejected replica was picked before probation")
		}
	}
	// After the sit-out, a pick promotes it to probation and probe ticks
	// reach it again.
	clk.Advance(2 * time.Second)
	sawProbe := false
	for i := 0; i < 64; i++ {
		r, _, ok := tab.Pick(wire.StepSIFT)
		if !ok {
			t.Fatal("pick declined")
		}
		if r.Addr() == "r0" {
			sawProbe = true
		}
	}
	if r0.State() != StateProbation {
		t.Fatalf("state after sit-out = %v, want probation", r0.State())
	}
	if !sawProbe {
		t.Fatal("probation replica never probed")
	}
	// ProbationSuccesses=3 consecutive successes re-admit.
	for i := 0; i < 3; i++ {
		r0.Begin()
		r0.Outcome(time.Millisecond, true)
	}
	if got := r0.State(); got != StateHealthy {
		t.Fatalf("state after probation successes = %v, want healthy", got)
	}
	// A probation failure re-ejects.
	for i := 0; i < 6; i++ {
		r0.Begin()
		r0.Outcome(0, false)
	}
	clk.Advance(2 * time.Second)
	tab.Pick(wire.StepSIFT) // promote
	for r0.State() != StateProbation {
		tab.Pick(wire.StepSIFT)
	}
	r0.Begin()
	r0.Outcome(0, false)
	if got := r0.State(); got != StateEjected {
		t.Fatalf("state after probation failure = %v, want ejected", got)
	}
}

func TestFailOpenWhenAllEjected(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"a", "b"})
	warm(tab, wire.StepSIFT, nil)
	for _, addr := range []string{"a", "b"} {
		r := tab.Find(wire.StepSIFT, addr)
		for i := 0; i < 6; i++ {
			r.Begin()
			r.Outcome(0, false)
		}
		if r.State() != StateEjected {
			t.Fatalf("replica %s not ejected", addr)
		}
	}
	if _, _, ok := tab.Pick(wire.StepSIFT); !ok {
		t.Fatal("pick declined with all replicas ejected; want fail-open")
	}
}

func TestSetReplicasPreservesSurvivorWindows(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"keep", "drop"})
	warm(tab, wire.StepSIFT, nil)
	keep := tab.Find(wire.StepSIFT, "keep")
	sentBefore := keep.sent.Load()
	tab.SetReplicas(wire.StepSIFT, []string{"keep", "new"})
	if got := tab.Find(wire.StepSIFT, "keep"); got != keep {
		t.Fatal("surviving replica window was rebuilt")
	}
	if keep.sent.Load() != sentBefore {
		t.Fatal("surviving replica counters reset")
	}
	if tab.Find(wire.StepSIFT, "drop") != nil {
		t.Fatal("removed replica still resolvable")
	}
	nw := tab.Find(wire.StepSIFT, "new")
	if nw == nil || nw.samples.Load() != 0 {
		t.Fatal("new replica should start cold")
	}
	// A cold newcomer sends the whole step back to fallback.
	if _, _, ok := tab.Pick(wire.StepSIFT); ok {
		t.Fatal("pick succeeded with a cold newcomer")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []string {
		clk := &testClock{}
		tab := newTestTable(clk, nil)
		tab.SetReplicas(wire.StepSIFT, []string{"a", "b", "c"})
		warm(tab, wire.StepSIFT, map[string]time.Duration{
			"a": time.Millisecond, "b": time.Millisecond, "c": time.Millisecond,
		})
		var picks []string
		for i := 0; i < 100; i++ {
			r, _, ok := tab.Pick(wire.StepSIFT)
			if !ok {
				t.Fatal("pick declined")
			}
			picks = append(picks, r.Addr())
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d differs across identically seeded runs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestDigest(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"a"})
	tab.SetReplicas(wire.StepMatching, []string{"m0", "m1"})
	r := tab.Find(wire.StepSIFT, "a")
	r.Begin()
	r.Outcome(2*time.Millisecond, true)
	r.Begin()
	r.Outcome(0, false)
	d := tab.Digest()
	if len(d) != 3 {
		t.Fatalf("digest has %d rows, want 3", len(d))
	}
	if d[0].Step != "sift" || d[0].Replica != "a" {
		t.Fatalf("digest[0] = %+v, want sift/a first", d[0])
	}
	if d[0].Sent != 2 || d[0].Acked != 1 || d[0].Lost != 1 {
		t.Fatalf("digest counters = %+v", d[0])
	}
	if !d[0].Cold {
		t.Fatal("replica below MinSamples should report cold")
	}
	if d[0].LossRatio <= 0 || d[0].LatencyMicros == 0 {
		t.Fatalf("digest EWMAs not populated: %+v", d[0])
	}
	if d[1].Step != "matching" || d[2].Step != "matching" {
		t.Fatalf("digest ordering wrong: %+v", d)
	}
}

func TestPickAllocationFree(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"a", "b", "c"})
	warm(tab, wire.StepSIFT, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := tab.Pick(wire.StepSIFT); !ok {
			t.Fatal("pick declined")
		}
	})
	if allocs != 0 {
		t.Fatalf("Pick allocates %.1f per op, want 0", allocs)
	}
}

func TestOutcomeAllocationFree(t *testing.T) {
	clk := &testClock{}
	tab := newTestTable(clk, nil)
	tab.SetReplicas(wire.StepSIFT, []string{"a"})
	r := tab.Find(wire.StepSIFT, "a")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Begin()
		r.Outcome(time.Millisecond, true)
	})
	if allocs != 0 {
		t.Fatalf("Begin+Outcome allocates %.1f per op, want 0", allocs)
	}
}

func TestStateStringsRoundTrip(t *testing.T) {
	for _, s := range []State{StateHealthy, StateDegraded, StateProbation, StateEjected} {
		if ParseState(s.String()) != s {
			t.Fatalf("ParseState(%q) != %v", s.String(), s)
		}
	}
	if StateHealthy.Rank() >= StateDegraded.Rank() || StateDegraded.Rank() >= StateProbation.Rank() ||
		StateProbation.Rank() >= StateEjected.Rank() {
		t.Fatal("state ranks not ordered")
	}
}
