// Package routestats maintains live per-(step, replica) routing
// statistics: an EWMA latency/loss window, in-flight counts, and an
// outlier-detection-style health state machine (healthy → degraded →
// ejected, with probation re-admission). It is the application-level
// signal substrate the paper's insight (IV) asks for — the orchestrator
// and the data plane both read it, the data plane to weight replica
// selection (power-of-two-choices over live weights), the control plane
// to tell a sick replica from a sick service.
//
// The structure is lock-light by design: the pick path — executed once
// per forwarded frame — touches only atomics (published replica sets,
// fixed-point weights, health states, a splitmix64 counter) and
// allocates nothing. The update path (one ack/timeout outcome per
// in-flight frame) takes a short per-replica mutex to fold the sample
// into the EWMAs and drive the state machine.
package routestats

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

// State is a replica's health classification.
type State uint32

// Health states. The machine moves Healthy ⇄ Degraded on the loss EWMA,
// drops to Ejected on sustained loss or consecutive failures, waits out
// a probation delay, then re-admits through Probation after enough
// consecutive successes.
const (
	StateHealthy State = iota
	StateDegraded
	StateProbation
	StateEjected
)

// String returns the state name used in digests and metrics.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateProbation:
		return "probation"
	case StateEjected:
		return "ejected"
	default:
		return fmt.Sprintf("state-%d", uint32(s))
	}
}

// Rank orders states from best to worst, for worst-of aggregation across
// observers (healthy < degraded < probation < ejected).
func (s State) Rank() int {
	switch s {
	case StateHealthy:
		return 0
	case StateDegraded:
		return 1
	case StateProbation:
		return 2
	default:
		return 3
	}
}

// ParseState is the inverse of String (unknown names rank as ejected).
func ParseState(name string) State {
	switch name {
	case "healthy":
		return StateHealthy
	case "degraded":
		return StateDegraded
	case "probation":
		return StateProbation
	default:
		return StateEjected
	}
}

// Config sets the window geometry and state-machine thresholds. The zero
// value means "use the defaults" for every field.
type Config struct {
	// Alpha is the EWMA sample weight for both the latency and the loss
	// window (default 0.2: roughly the last ~10 samples dominate).
	Alpha float64
	// AckTimeout is how long the sender waits for a hop acknowledgement
	// before counting the frame as lost (default 250 ms). Exposed here so
	// the feeding data plane and the window agree on one horizon.
	AckTimeout time.Duration
	// MinSamples is the per-replica warm-up: while any replica of a step
	// has fewer samples, Pick declines and the caller falls back to its
	// deterministic round-robin (which is exactly what warms the window).
	// Default 8.
	MinSamples uint64
	// DegradeLoss is the loss-EWMA level at which a replica turns
	// Degraded (default 0.05).
	DegradeLoss float64
	// EjectLoss is the loss-EWMA level at which a replica is Ejected
	// (default 0.5).
	EjectLoss float64
	// EjectFailures ejects after this many consecutive failures
	// regardless of the EWMA — the fast path for a blackholed replica
	// (default 8).
	EjectFailures uint32
	// Probation is how long an ejected replica sits out before probe
	// traffic may re-admit it (default 2 s).
	Probation time.Duration
	// ProbationSuccesses is how many consecutive probe successes promote
	// Probation back to Healthy (default 5).
	ProbationSuccesses uint32
	// ProbeEvery routes every Nth pick to the stalest non-ejected
	// replica (the one longest without traffic) so shed windows keep
	// receiving samples and can recover; p2c alone would starve a
	// low-weight replica forever, freezing the very statistics that
	// could re-admit it (default 16, 0 disables).
	ProbeEvery uint64
	// Seed seeds the pick path's splitmix64 sequence, making a run's
	// choices reproducible.
	Seed uint64
	// Now returns the current time in nanoseconds. Defaults to wall time;
	// the simulator injects its virtual clock.
	Now func() int64
}

// Defaults for the zero Config.
const (
	DefaultAlpha              = 0.2
	DefaultAckTimeout         = 250 * time.Millisecond
	DefaultMinSamples         = 8
	DefaultDegradeLoss        = 0.05
	DefaultEjectLoss          = 0.5
	DefaultEjectFailures      = 8
	DefaultProbation          = 2 * time.Second
	DefaultProbationSuccesses = 5
	DefaultProbeEvery         = 16
)

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.DegradeLoss <= 0 {
		c.DegradeLoss = DefaultDegradeLoss
	}
	if c.EjectLoss <= 0 {
		c.EjectLoss = DefaultEjectLoss
	}
	if c.EjectFailures == 0 {
		c.EjectFailures = DefaultEjectFailures
	}
	if c.Probation <= 0 {
		c.Probation = DefaultProbation
	}
	if c.ProbationSuccesses == 0 {
		c.ProbationSuccesses = DefaultProbationSuccesses
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = DefaultProbeEvery
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// maxReplicasPerStep bounds one step's replica set (the pick path keeps
// its eligibility set in a 64-bit mask).
const maxReplicasPerStep = 64

// latencyFloorMicros keeps the weight finite for sub-microsecond EWMAs
// and damps the advantage of "instant" replicas over merely fast ones.
const latencyFloorMicros = 50.0

// weightScale converts the float goodness score to fixed-point so the
// pick path compares plain uint64s.
const weightScale = 1e9

// Replica is one live statistics window: a (step, replica address) pair.
// Begin/Outcome are the data-plane feed; all methods are safe for
// concurrent use.
type Replica struct {
	addr string
	cfg  *Config

	// Pick-path state: atomics only.
	state    atomic.Uint32
	weight   atomic.Uint64 // fixed-point goodness, higher is better
	samples  atomic.Uint64
	inflight atomic.Int64
	lastPick atomic.Int64 // nanos, for probe staleness ordering
	ejected  atomic.Int64 // nanos of the last ejection

	// Cumulative counters (digest/telemetry only).
	sent, acked, lost, sendErrs atomic.Uint64

	// Update-path state, folded under a short mutex.
	mu          sync.Mutex
	ewmaLatency float64 // µs, successes only
	ewmaLoss    float64 // 0..1
	consecFail  uint32
	probationOK uint32
}

// Addr returns the replica's ingress address.
func (r *Replica) Addr() string { return r.addr }

// State returns the replica's current health state.
func (r *Replica) State() State { return State(r.state.Load()) }

// Inflight returns the number of frames sent and not yet resolved.
func (r *Replica) Inflight() int64 { return r.inflight.Load() }

// Begin records a send to this replica; every Begin must be resolved by
// exactly one Outcome/OutcomeSendError call.
func (r *Replica) Begin() {
	r.sent.Add(1)
	r.inflight.Add(1)
}

// Outcome resolves one in-flight frame: ok with the measured one-hop
// latency (ack round-trip, or transit time in the simulator), or lost
// (timeout, transport drop, or downstream admission drop).
func (r *Replica) Outcome(latency time.Duration, ok bool) {
	r.inflight.Add(-1)
	r.samples.Add(1)
	if ok {
		r.acked.Add(1)
	} else {
		r.lost.Add(1)
	}
	r.fold(latency, ok)
}

// OutcomeSendError resolves one in-flight frame whose send failed
// locally (socket error) — a loss with its own counter.
func (r *Replica) OutcomeSendError() {
	r.sendErrs.Add(1)
	r.inflight.Add(-1)
	r.samples.Add(1)
	r.lost.Add(1)
	r.fold(0, false)
}

// fold integrates one sample into the EWMAs and drives the state
// machine, then republishes the fixed-point weight.
func (r *Replica) fold(latency time.Duration, ok bool) {
	cfg := r.cfg
	now := cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	a := cfg.Alpha
	if ok {
		us := float64(latency.Microseconds())
		if us < 0 {
			us = 0
		}
		if r.ewmaLatency == 0 {
			r.ewmaLatency = us
		} else {
			r.ewmaLatency = (1-a)*r.ewmaLatency + a*us
		}
		r.ewmaLoss = (1 - a) * r.ewmaLoss
		r.consecFail = 0
	} else {
		r.ewmaLoss = (1-a)*r.ewmaLoss + a
		r.consecFail++
	}
	switch State(r.state.Load()) {
	case StateProbation:
		if !ok {
			r.ejectLocked(now)
		} else {
			r.probationOK++
			if r.probationOK >= cfg.ProbationSuccesses {
				// Re-admit with a clean loss window: the ejection-era
				// EWMA would otherwise re-degrade it instantly.
				r.ewmaLoss = 0
				r.state.Store(uint32(StateHealthy))
			}
		}
	case StateEjected:
		// A stale outcome from before the ejection; counters and EWMAs
		// were updated above, the state waits out its probation delay.
	default: // Healthy, Degraded
		switch {
		case r.ewmaLoss >= cfg.EjectLoss || r.consecFail >= cfg.EjectFailures:
			r.ejectLocked(now)
		case r.ewmaLoss >= cfg.DegradeLoss:
			r.state.Store(uint32(StateDegraded))
		default:
			r.state.Store(uint32(StateHealthy))
		}
	}
	r.weight.Store(r.weightLocked())
}

// ejectLocked moves the replica to Ejected and stamps the sit-out clock.
func (r *Replica) ejectLocked(now int64) {
	r.state.Store(uint32(StateEjected))
	r.ejected.Store(now)
	r.probationOK = 0
}

// weightLocked computes the fixed-point goodness score: success
// probability squared (so loss hurts twice) over the latency EWMA.
func (r *Replica) weightLocked() uint64 {
	succ := 1 - r.ewmaLoss
	if succ < 0 {
		succ = 0
	}
	return uint64(weightScale * succ * succ / (r.ewmaLatency + latencyFloorMicros))
}

// snapshot reads the mutex-guarded fields for a digest.
func (r *Replica) snapshot() (latencyMicros uint64, loss float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return uint64(r.ewmaLatency), r.ewmaLoss
}

// replicaSet is one step's immutable, atomically published replica list.
type replicaSet struct {
	replicas []*Replica
}

// Table holds the per-step replica windows. One Table serves one node's
// outbound routing; the simulator mirrors it per pipeline.
type Table struct {
	cfg   Config
	sets  [wire.NumSteps]atomic.Pointer[replicaSet]
	rng   atomic.Uint64
	picks atomic.Uint64
}

// New builds a table with cfg's zero fields defaulted.
func New(cfg Config) *Table {
	t := &Table{cfg: cfg.withDefaults()}
	t.rng.Store(t.cfg.Seed)
	return t
}

// Config returns the effective (defaulted) configuration.
func (t *Table) Config() Config { return t.cfg }

// now returns the configured clock's nanoseconds.
func (t *Table) now() int64 { return t.cfg.Now() }

// SetReplicas atomically replaces one step's replica set. Windows of
// addresses present in the old set survive the swap — a control-plane
// route push must not amnesia the statistics of replicas that merely
// kept their place. Sets beyond maxReplicasPerStep are truncated.
func (t *Table) SetReplicas(step wire.Step, addrs []string) {
	if int(step) >= wire.NumSteps {
		return
	}
	if len(addrs) > maxReplicasPerStep {
		addrs = addrs[:maxReplicasPerStep]
	}
	old := t.sets[step].Load()
	set := &replicaSet{replicas: make([]*Replica, 0, len(addrs))}
	for _, addr := range addrs {
		var rep *Replica
		if old != nil {
			for _, r := range old.replicas {
				if r.addr == addr {
					rep = r
					break
				}
			}
		}
		if rep == nil {
			rep = &Replica{addr: addr, cfg: &t.cfg}
		}
		set.replicas = append(set.replicas, rep)
	}
	t.sets[step].Store(set)
}

// Find returns the window for one (step, address) pair, or nil. The
// linear scan is allocation-free and replica sets are small.
func (t *Table) Find(step wire.Step, addr string) *Replica {
	if int(step) >= wire.NumSteps {
		return nil
	}
	set := t.sets[step].Load()
	if set == nil {
		return nil
	}
	for _, r := range set.replicas {
		if r.addr == addr {
			return r
		}
	}
	return nil
}

// rnd advances the table's splitmix64 sequence — deterministic under the
// seed, race-safe, and allocation-free.
func (t *Table) rnd() uint64 {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Pick selects a replica for step by power-of-two-choices over the live
// weights. It declines (ok=false) while the step is unknown, empty, or
// cold — any replica below MinSamples — so the caller can fall back to
// its deterministic round-robin; the fallback traffic is what warms the
// window. Every ProbeEvery-th pick routes to the stalest non-healthy
// replica instead, keeping degraded and probation windows fed. When
// every replica is ejected or on probation the pick fails open across
// all of them (sending into a possibly-sick replica beats dropping the
// frame on the floor).
func (t *Table) Pick(step wire.Step) (*Replica, int, bool) {
	if int(step) >= wire.NumSteps {
		return nil, 0, false
	}
	set := t.sets[step].Load()
	if set == nil || len(set.replicas) == 0 {
		return nil, 0, false
	}
	reps := set.replicas
	now := t.now()
	cfg := &t.cfg
	var eligible uint64
	nEligible := 0
	for i, r := range reps {
		if r.samples.Load() < cfg.MinSamples {
			return nil, 0, false // cold window → deterministic fallback
		}
		st := State(r.state.Load())
		if st == StateEjected && now-r.ejected.Load() >= int64(cfg.Probation) {
			// Lazy promotion: the sit-out is over; probe traffic may now
			// re-admit it.
			if r.state.CompareAndSwap(uint32(StateEjected), uint32(StateProbation)) {
				st = StateProbation
			} else {
				st = State(r.state.Load())
			}
		}
		if st == StateHealthy || st == StateDegraded {
			eligible |= 1 << uint(i)
			nEligible++
		}
	}
	picks := t.picks.Add(1)
	if cfg.ProbeEvery > 0 && picks%cfg.ProbeEvery == 0 {
		if i, ok := t.probeIndex(reps, now); ok {
			r := reps[i]
			r.lastPick.Store(now)
			return r, i, true
		}
	}
	if nEligible == 0 {
		// Fail open: everything is ejected/probation.
		eligible = (uint64(1) << uint(len(reps))) - 1
		nEligible = len(reps)
	}
	var idx int
	if nEligible == 1 {
		idx = selectBit(eligible, 0)
	} else {
		ra := t.rnd() % uint64(nEligible)
		rb := t.rnd() % uint64(nEligible-1)
		if rb >= ra {
			rb++
		}
		ia := selectBit(eligible, int(ra))
		ib := selectBit(eligible, int(rb))
		wa := reps[ia].weight.Load()
		wb := reps[ib].weight.Load()
		idx = ia
		if wb > wa || (wb == wa && ib < ia) {
			idx = ib
		}
	}
	r := reps[idx]
	r.lastPick.Store(now)
	return r, idx, true
}

// probeIndex finds the stalest non-ejected replica — the window longest
// without a sample. Probing only replicas staler than the median would
// save a few ticks; probing the stalest unconditionally is simpler and
// degenerates to a slow round-robin when traffic is already even.
func (t *Table) probeIndex(reps []*Replica, now int64) (int, bool) {
	best, bestAge := -1, int64(-1)
	for i, r := range reps {
		if State(r.state.Load()) == StateEjected {
			continue
		}
		age := now - r.lastPick.Load()
		if age > bestAge {
			best, bestAge = i, age
		}
	}
	return best, best >= 0
}

// selectBit returns the index of the rank-th set bit of mask.
func selectBit(mask uint64, rank int) int {
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if rank == 0 {
			return i
		}
		rank--
	}
	return 0 // unreachable for rank < popcount(mask)
}

// RouteDigest is one replica window's exportable snapshot — what rides
// heartbeats, the scatter_route_* metric series, and the /routes view.
type RouteDigest struct {
	Step          string  `json:"step"`
	Replica       string  `json:"replica"`
	State         string  `json:"state"`
	Weight        float64 `json:"weight"`
	LatencyMicros uint64  `json:"latency_us"`
	LossRatio     float64 `json:"loss_ratio"`
	Inflight      int64   `json:"inflight"`
	Sent          uint64  `json:"sent"`
	Acked         uint64  `json:"acked"`
	Lost          uint64  `json:"lost"`
	SendErrors    uint64  `json:"send_errors"`
	Cold          bool    `json:"cold,omitempty"`
}

// Digest snapshots every window, ordered by step then replica position.
func (t *Table) Digest() []RouteDigest {
	var out []RouteDigest
	for step := 0; step < wire.NumSteps; step++ {
		set := t.sets[step].Load()
		if set == nil {
			continue
		}
		for _, r := range set.replicas {
			lat, loss := r.snapshot()
			out = append(out, RouteDigest{
				Step:          wire.Step(step).String(),
				Replica:       r.addr,
				State:         r.State().String(),
				Weight:        float64(r.weight.Load()) / weightScale,
				LatencyMicros: lat,
				LossRatio:     loss,
				Inflight:      r.inflight.Load(),
				Sent:          r.sent.Load(),
				Acked:         r.acked.Load(),
				Lost:          r.lost.Load(),
				SendErrors:    r.sendErrs.Load(),
				Cold:          r.samples.Load() < t.cfg.MinSamples,
			})
		}
	}
	return out
}
