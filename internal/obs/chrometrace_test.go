package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

// frameSpans builds one frame's journey across all five services on two
// hosts with non-zero queue and proc segments.
func frameSpans(client uint32, frame uint64, base time.Duration) []Span {
	hosts := []string{"E1", "E1", "E2", "E2", "E2"}
	var out []Span
	at := base
	for step := wire.StepPrimary; step < wire.StepDone; step++ {
		queue := time.Duration(step+1) * 200 * time.Microsecond
		proc := time.Duration(step+1) * time.Millisecond
		out = append(out, Span{
			Service:   step.String(),
			Host:      hosts[step],
			Step:      step,
			ClientID:  client,
			FrameNo:   frame,
			EnqueueAt: at,
			StartAt:   at + queue,
			EndAt:     at + queue + proc,
			Queue:     queue,
			Proc:      proc,
			Outcome:   OutcomeOK,
		})
		at += queue + proc + 500*time.Microsecond
	}
	return out
}

func TestWriteChromeTrace(t *testing.T) {
	spans := frameSpans(1, 1, 0)
	spans = append(spans, Span{
		Service: "sift", Host: "E1", Step: wire.StepSIFT, ClientID: 2, FrameNo: 1,
		EnqueueAt: time.Millisecond, StartAt: time.Millisecond, EndAt: time.Millisecond,
		Outcome: OutcomeOverflow,
	})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var procSlices, queueSlices, metaProcs, metaThreads, drops, flows int
	services := map[string]bool{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		cat, _ := ev["cat"].(string)
		switch {
		case ph == "M" && name == "process_name":
			metaProcs++
		case ph == "M" && name == "thread_name":
			metaThreads++
		case ph == "X" && cat == "queue":
			queueSlices++
			if dur, ok := ev["dur"].(float64); !ok || dur <= 0 {
				t.Errorf("queue slice without positive dur: %v", ev)
			}
		case ph == "X":
			procSlices++
			services[name] = true
			if dur, ok := ev["dur"].(float64); !ok || dur <= 0 {
				t.Errorf("proc slice without positive dur: %v", ev)
			}
		case ph == "i":
			drops++
		case ph == "s" || ph == "t":
			flows++
		}
	}
	if metaProcs != 2 {
		t.Errorf("process metadata = %d, want 2 hosts", metaProcs)
	}
	if metaThreads != 5 {
		t.Errorf("thread metadata = %d, want 5 service tracks", metaThreads)
	}
	if procSlices != 5 || queueSlices != 5 {
		t.Errorf("slices proc=%d queue=%d, want 5 each", procSlices, queueSlices)
	}
	for step := wire.StepPrimary; step < wire.StepDone; step++ {
		if !services[step.String()] {
			t.Errorf("no proc slice for %s", step)
		}
	}
	if drops != 1 {
		t.Errorf("drop instants = %d, want 1", drops)
	}
	if flows != 6 { // one flow event per span; the first of each frame is "s"
		t.Errorf("flow events = %d, want 6", flows)
	}
}

func TestFromWireRoundTrip(t *testing.T) {
	recs := []wire.SpanRecord{
		{Step: wire.StepPrimary, Outcome: uint8(OutcomeOK), Host: "E1",
			EnqueueMicros: 1000, StartMicros: 1400, EndMicros: 2400},
		{Step: wire.StepSIFT, Outcome: uint8(OutcomeThreshold), Host: "E2",
			EnqueueMicros: 2500, StartMicros: 2500, EndMicros: 102500},
	}
	spans := FromWire(7, 42, recs)
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Service != "primary" || s.Host != "E1" || s.ClientID != 7 || s.FrameNo != 42 {
		t.Errorf("identity wrong: %+v", s)
	}
	if s.Queue != 400*time.Microsecond || s.Proc != time.Millisecond {
		t.Errorf("segments wrong: queue=%v proc=%v", s.Queue, s.Proc)
	}
	if spans[1].Outcome != OutcomeThreshold || !spans[1].Outcome.Dropped() {
		t.Errorf("outcome wrong: %v", spans[1].Outcome)
	}
}

func TestNormalize(t *testing.T) {
	base := 1_700_000_000 * time.Second // absolute wall-clock origin
	spans := []Span{
		{EnqueueAt: base + 10*time.Millisecond, StartAt: base + 12*time.Millisecond, EndAt: base + 20*time.Millisecond},
		{EnqueueAt: base, StartAt: base + time.Millisecond, EndAt: base + 2*time.Millisecond},
	}
	norm := Normalize(spans)
	if norm[1].EnqueueAt != 0 {
		t.Errorf("earliest enqueue = %v, want 0", norm[1].EnqueueAt)
	}
	if norm[0].EnqueueAt != 10*time.Millisecond || norm[0].EndAt != 20*time.Millisecond {
		t.Errorf("shifted span = %+v", norm[0])
	}
	if spans[1].EnqueueAt != base {
		t.Error("Normalize mutated its input")
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) != nil")
	}
}
