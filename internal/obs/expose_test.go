package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/edge-mar/scatter/internal/wire"
)

func testRegistry() *Registry {
	reg := NewRegistry()
	reg.FramesSent.Add(30)
	reg.FramesDelivered.Add(25)
	m := reg.Service("sift")
	m.Arrived.Add(30)
	m.Dropped.Add(5)
	for i := 0; i < 25; i++ {
		m.RecordProcessed(2*time.Millisecond, 8*time.Millisecond)
	}
	return reg
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	rec := NewRecorder(0)
	rec.Record(Span{Service: "sift", Host: "E1", Step: wire.StepSIFT,
		ClientID: 1, FrameNo: 3, EnqueueAt: time.Millisecond,
		StartAt: 2 * time.Millisecond, EndAt: 9 * time.Millisecond,
		Queue: time.Millisecond, Proc: 7 * time.Millisecond})
	srv := httptest.NewServer(Handler(testRegistry(), rec))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}

	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		`scatter_frames_sent_total 30`,
		`scatter_service_processed_total{service="sift"} 25`,
		`scatter_service_dropped_total{service="sift"} 5`,
		`scatter_service_latency_seconds_count{service="sift"} 25`,
		`scatter_service_latency_seconds{service="sift",quantile="0.95"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("metrics.json status %d", code)
	}
	var snap struct {
		FramesSent uint64 `json:"frames_sent"`
		Services   []struct {
			Service   string  `json:"service"`
			Processed uint64  `json:"processed"`
			DropRatio float64 `json:"drop_ratio"`
			P95Micros uint64  `json:"p95_us"`
		} `json:"services"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json decode: %v", err)
	}
	if snap.FramesSent != 30 || len(snap.Services) != 1 ||
		snap.Services[0].Processed != 25 || snap.Services[0].P95Micros == 0 {
		t.Errorf("metrics.json content wrong: %s", body)
	}

	code, body = get(t, srv, "/spans")
	if code != http.StatusOK {
		t.Fatalf("spans status %d", code)
	}
	var spans []Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("spans decode: %v", err)
	}
	if len(spans) != 1 || spans[0].Service != "sift" {
		t.Errorf("spans content wrong: %s", body)
	}

	code, body = get(t, srv, "/spans.trace")
	if code != http.StatusOK {
		t.Fatalf("spans.trace status %d", code)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("spans.trace decode: %v", err)
	}
	if len(events) == 0 {
		t.Error("spans.trace produced no events")
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("debug/vars: %d", code)
	}

	code, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("pprof cmdline status %d", code)
	}
}

func TestHandlerWithoutRecorder(t *testing.T) {
	srv := httptest.NewServer(Handler(testRegistry(), nil))
	defer srv.Close()
	code, _ := get(t, srv, "/spans")
	if code != http.StatusNotFound {
		t.Errorf("spans without recorder: %d, want 404", code)
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", testRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
