package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"github.com/edge-mar/scatter/internal/obs/routestats"
)

// Handler exposes a registry (and optionally a span recorder) over HTTP:
//
//	GET /metrics       text exposition (Prometheus-style lines)
//	GET /metrics.json  JSON digest (the heartbeat payload, plus buckets)
//	GET /healthz       liveness probe
//	GET /routes        per-replica routing windows, aligned text table
//	GET /routes.json   the same as JSON (404 without a route source)
//	GET /spans         recorded spans as JSON (404 without a recorder)
//	GET /spans.trace   recorded spans as Chrome trace_event JSON
//	GET /debug/vars    expvar
//	GET /debug/pprof/  runtime profiles
//
// rec may be nil; span endpoints then report 404.
func Handler(reg *Registry, rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTextMetrics(w, reg)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(jsonMetrics(reg))
	})
	mux.HandleFunc("GET /routes", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteRouteTable(w, reg.RouteDigests())
	})
	mux.HandleFunc("GET /routes.json", func(w http.ResponseWriter, r *http.Request) {
		digests := reg.RouteDigests()
		if digests == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(digests)
	})
	mux.HandleFunc("GET /spans", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rec.Spans())
	})
	mux.HandleFunc("GET /spans.trace", func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, rec.Spans())
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr ("host:port", port 0 for ephemeral) and serves
// Handler(reg, rec) until the returned server is closed. It returns the
// bound address.
func Serve(addr string, reg *Registry, rec *Recorder) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, rec)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// writeTextMetrics renders the Prometheus-style text exposition. Metric
// names follow scatter_<instrument>{service="..."} with durations in
// seconds, as the ecosystem expects.
func writeTextMetrics(w http.ResponseWriter, reg *Registry) {
	fmt.Fprintf(w, "# TYPE scatter_uptime_seconds gauge\n")
	fmt.Fprintf(w, "scatter_uptime_seconds %g\n", time.Since(reg.Start()).Seconds())
	fmt.Fprintf(w, "# TYPE scatter_frames_sent_total counter\n")
	fmt.Fprintf(w, "scatter_frames_sent_total %d\n", reg.FramesSent.Value())
	fmt.Fprintf(w, "# TYPE scatter_frames_delivered_total counter\n")
	fmt.Fprintf(w, "scatter_frames_delivered_total %d\n", reg.FramesDelivered.Value())
	for _, name := range reg.ServiceNames() {
		m := reg.Service(name)
		label := fmt.Sprintf("{service=%q}", name)
		fmt.Fprintf(w, "scatter_service_arrived_total%s %d\n", label, m.Arrived.Value())
		fmt.Fprintf(w, "scatter_service_processed_total%s %d\n", label, m.Processed.Value())
		fmt.Fprintf(w, "scatter_service_dropped_total%s %d\n", label, m.Dropped.Value())
		fmt.Fprintf(w, "scatter_service_errors_total%s %d\n", label, m.Errors.Value())
		fmt.Fprintf(w, "scatter_service_queue_len%s %d\n", label, m.QueueLen.Value())
		writeTextHistogram(w, "scatter_service_queue_seconds", name, &m.QueueLat)
		writeTextHistogram(w, "scatter_service_proc_seconds", name, &m.ProcLat)
		writeTextHistogram(w, "scatter_service_latency_seconds", name, &m.SvcLat)
		if m.Batches.Value() > 0 {
			fmt.Fprintf(w, "scatter_service_batches_total%s %d\n", label, m.Batches.Value())
			fmt.Fprintf(w, "scatter_service_batch_frames_total%s %d\n", label, m.BatchFrames.Value())
			fmt.Fprintf(w, "scatter_service_batch_size%s %d\n", label, m.BatchSize.Value())
			writeTextHistogram(w, "scatter_service_batch_wait_seconds", name, &m.BatchWait)
		}
	}
	writeTextRoutes(w, reg.RouteDigests())
	if d, ok := reg.FastPathDigest(); ok {
		writeTextFastPath(w, d)
	}
	if d, ok := reg.AdmissionDigest(); ok {
		writeTextAdmission(w, d)
	}
	if d, ok := reg.ShardDigest(); ok {
		writeTextShard(w, d)
	}
}

func writeTextHistogram(w http.ResponseWriter, metric, service string, h *Histogram) {
	var cum uint64
	for _, b := range h.Buckets() {
		cum += b.Count
		le := "+Inf"
		if b.UpperBound > 0 {
			le = fmt.Sprintf("%g", b.UpperBound.Seconds())
		}
		fmt.Fprintf(w, "%s_bucket{service=%q,le=%q} %d\n", metric, service, le, cum)
	}
	fmt.Fprintf(w, "%s_sum{service=%q} %g\n", metric, service, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count{service=%q} %d\n", metric, service, h.Count())
	for _, q := range []float64{0.50, 0.95, 0.99} {
		fmt.Fprintf(w, "%s{service=%q,quantile=\"%g\"} %g\n",
			metric, service, q, h.Quantile(q).Seconds())
	}
}

// jsonSnapshot is the /metrics.json document.
type jsonSnapshot struct {
	UptimeSeconds   float64                  `json:"uptime_seconds"`
	FramesSent      uint64                   `json:"frames_sent"`
	FramesDelivered uint64                   `json:"frames_delivered"`
	Services        []jsonServiceSnap        `json:"services"`
	Routes          []routestats.RouteDigest `json:"routes,omitempty"`
	FastPath        *FastPathDigest          `json:"fastpath,omitempty"`
	Admission       *AdmissionDigest         `json:"admission,omitempty"`
	Shard           *ShardDigest             `json:"shard,omitempty"`
}

type jsonServiceSnap struct {
	ServiceDigest
	QueueP95Micros uint64 `json:"queue_p95_us"`
	ProcP95Micros  uint64 `json:"proc_p95_us"`
}

func jsonMetrics(reg *Registry) jsonSnapshot {
	snap := jsonSnapshot{
		UptimeSeconds:   time.Since(reg.Start()).Seconds(),
		FramesSent:      reg.FramesSent.Value(),
		FramesDelivered: reg.FramesDelivered.Value(),
	}
	digests := reg.Digest()
	sort.Slice(digests, func(i, j int) bool { return digests[i].Service < digests[j].Service })
	for _, d := range digests {
		m := reg.Service(d.Service)
		snap.Services = append(snap.Services, jsonServiceSnap{
			ServiceDigest:  d,
			QueueP95Micros: uint64(m.QueueLat.Quantile(0.95) / time.Microsecond),
			ProcP95Micros:  uint64(m.ProcLat.Quantile(0.95) / time.Microsecond),
		})
	}
	snap.Routes = reg.RouteDigests()
	if d, ok := reg.FastPathDigest(); ok {
		snap.FastPath = &d
	}
	if d, ok := reg.AdmissionDigest(); ok {
		snap.Admission = &d
	}
	if d, ok := reg.ShardDigest(); ok {
		snap.Shard = &d
	}
	return snap
}
