package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/edge-mar/scatter/internal/obs/routestats"
)

func testRouteDigests() []routestats.RouteDigest {
	return []routestats.RouteDigest{
		{Step: "sift", Replica: "127.0.0.1:9001", State: "healthy",
			Weight: 0.8, LatencyMicros: 1200, LossRatio: 0.01,
			Inflight: 2, Sent: 100, Acked: 97, Lost: 1, SendErrors: 0},
		{Step: "sift", Replica: "127.0.0.1:9002", State: "ejected",
			Weight: 0, LatencyMicros: 90000, LossRatio: 0.9,
			Sent: 40, Acked: 4, Lost: 36},
		{Step: "encoding", Replica: "127.0.0.1:9003", State: "healthy",
			Cold: true, Sent: 2},
	}
}

func TestRouteExposition(t *testing.T) {
	reg := testRegistry()
	reg.SetRouteSource(func() []routestats.RouteDigest { return testRouteDigests() })
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		`scatter_route_weight{step="sift",replica="127.0.0.1:9001"} 0.8`,
		`scatter_route_state{step="sift",replica="127.0.0.1:9001"} 0`,
		`scatter_route_state{step="sift",replica="127.0.0.1:9002"} 3`,
		`scatter_route_latency_seconds{step="sift",replica="127.0.0.1:9001"} 0.0012`,
		`scatter_route_loss_ratio{step="sift",replica="127.0.0.1:9002"} 0.9`,
		`scatter_route_acked_total{step="sift",replica="127.0.0.1:9001"} 97`,
		`scatter_route_lost_total{step="sift",replica="127.0.0.1:9002"} 36`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("metrics.json status %d", code)
	}
	var snap struct {
		Routes []routestats.RouteDigest `json:"routes"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics.json decode: %v", err)
	}
	if len(snap.Routes) != 3 || snap.Routes[0].Replica != "127.0.0.1:9001" {
		t.Errorf("metrics.json routes wrong: %s", body)
	}

	code, body = get(t, srv, "/routes")
	if code != http.StatusOK {
		t.Fatalf("routes status %d", code)
	}
	for _, want := range []string{"STEP", "127.0.0.1:9002", "ejected", "healthy (cold)"} {
		if !strings.Contains(body, want) {
			t.Errorf("/routes missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/routes.json")
	if code != http.StatusOK {
		t.Fatalf("routes.json status %d", code)
	}
	var digests []routestats.RouteDigest
	if err := json.Unmarshal([]byte(body), &digests); err != nil {
		t.Fatalf("routes.json decode: %v", err)
	}
	if len(digests) != 3 || digests[1].State != "ejected" {
		t.Errorf("routes.json content wrong: %s", body)
	}
}

// TestRouteExpositionWithoutSource pins the degraded behaviour: no
// scatter_route_* lines, an explanatory /routes body, 404 on the JSON
// endpoint, and no routes key in /metrics.json.
func TestRouteExpositionWithoutSource(t *testing.T) {
	srv := httptest.NewServer(Handler(testRegistry(), nil))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || strings.Contains(body, "scatter_route_") {
		t.Errorf("route lines leaked without a source: %d\n%s", code, body)
	}
	code, body = get(t, srv, "/routes")
	if code != http.StatusOK || !strings.Contains(body, "no route statistics") {
		t.Errorf("/routes without source: %d %q", code, body)
	}
	code, _ = get(t, srv, "/routes.json")
	if code != http.StatusNotFound {
		t.Errorf("/routes.json without source: %d, want 404", code)
	}
	code, body = get(t, srv, "/metrics.json")
	if code != http.StatusOK || strings.Contains(body, `"routes"`) {
		t.Errorf("metrics.json routes key without source: %d\n%s", code, body)
	}
}

// TestRouteSourceLiveTable wires a real routestats.Table as the source —
// the integration the worker obs hookup relies on.
func TestRouteSourceLiveTable(t *testing.T) {
	table := routestats.New(routestats.Config{MinSamples: 1})
	table.SetReplicas(2, []string{"a:1", "b:2"}) // step 2 = sift
	rep := table.Find(2, "a:1")
	rep.Begin()
	rep.Outcome(0, true)

	reg := NewRegistry()
	reg.SetRouteSource(table.Digest)
	digests := reg.RouteDigests()
	if len(digests) != 2 {
		t.Fatalf("want 2 digests, got %+v", digests)
	}
	if digests[0].Replica != "a:1" || digests[0].Acked != 1 {
		t.Errorf("live digest wrong: %+v", digests[0])
	}
}
