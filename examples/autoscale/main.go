// Autoscale: the paper's §6 proposal running on the *real* pipeline —
// the sidecar analytics of a saturated sift worker trigger a live
// scale-out (a second sift replica joins the routing table mid-run) and
// the delivered frame rate recovers. Real UDP workers, real SIFT
// features, real queue drops.
//
// In the paper's testbed sift is GPU-bound, and replicas scale because
// each lands on its own GPU. This demo wraps the CPU SIFT with an
// emulated GPU-kernel time (a sleep, which like a real GPU kernel does
// not contend for the host CPU) so that scale-out behaves as it does on
// multi-GPU hardware even on a small machine.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"time"

	scatter "github.com/edge-mar/scatter"
)

const (
	analysisW, analysisH = 256, 144
	clientFPS            = 16
	gpuKernelTime        = 90 * time.Millisecond // emulated GPU portion of sift
	phase                = 12 * time.Second
)

// gpuEmulated adds the emulated GPU-kernel time to a processor. Sleeping
// releases the CPU, so two replicas overlap their "kernels" exactly like
// two real GPUs would.
type gpuEmulated struct {
	scatter.Processor
	delay time.Duration
}

func (g gpuEmulated) Process(fr *scatter.Frame) error {
	time.Sleep(g.delay)
	return g.Processor.Process(fr)
}

func main() {
	video := scatter.NewVideoSource(scatter.VideoConfig{W: analysisW, H: analysisH, FPS: clientFPS, Seed: 7})
	model, err := scatter.Train(video.ReferenceImages(), scatter.TrainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	newSift := func() scatter.Processor {
		procs := scatter.NewProcessors(model, true, analysisW, analysisH)
		return gpuEmulated{Processor: procs[scatter.StepSIFT], delay: gpuKernelTime}
	}
	procs := scatter.NewProcessors(model, true, analysisW, analysisH)

	router := scatter.NewStaticRouter(nil)
	table := map[scatter.Step][]string{}
	start := func(step scatter.Step, proc scatter.Processor) *scatter.Worker {
		w, err := scatter.StartWorker(scatter.WorkerConfig{
			Step: step, Mode: scatter.ModeScatterPP, Processor: proc,
			ListenAddr: "127.0.0.1:0", Router: router,
			Threshold: 200 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		table[step] = append(table[step], w.Addr())
		return w
	}
	var workers []*scatter.Worker
	var sift *scatter.Worker
	for step := scatter.StepPrimary; step <= scatter.StepMatching; step++ {
		proc := procs[step]
		if step == scatter.StepSIFT {
			proc = newSift()
		}
		w := start(step, proc)
		workers = append(workers, w)
		if step == scatter.StepSIFT {
			sift = w
		}
	}
	router.SetRoutes(table)

	client, err := scatter.StartClient(scatter.ClientConfig{
		ID: 1, FPS: clientFPS, Ingress: table[scatter.StepPrimary][0],
		NextFrame: func(i int) []byte { return scatter.FramePayload(video, i) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()

	fmt.Printf("streaming %d FPS; one sift replica with a %v emulated GPU kernel...\n",
		clientFPS, gpuKernelTime)
	countFor := func(d time.Duration) int {
		deadline := time.After(d)
		n := 0
		for {
			select {
			case <-client.Results():
				n++
			case <-deadline:
				return n
			}
		}
	}

	before := countFor(phase)
	st := sift.Stats()
	dropped := st.DroppedThreshold + st.DroppedQueue
	dropRatio := float64(dropped) / float64(max(st.Received, 1))
	fmt.Printf("\nphase 1 (1 sift replica):  %.1f FPS delivered\n", float64(before)/phase.Seconds())
	fmt.Printf("sift sidecar analytics: received=%d processed=%d dropped=%d (ratio %.0f%%)\n",
		st.Received, st.Processed, dropped, dropRatio*100)

	if dropRatio > 0.1 {
		fmt.Println("\nQoS policy: sift drop ratio over 10% -> scaling out a second replica")
	} else {
		fmt.Println("\nno distress detected; scaling anyway for the demo")
	}
	workers = append(workers, start(scatter.StepSIFT, newSift()))
	router.SetRoutes(table) // both sift replicas now rotate

	after := countFor(phase)
	fmt.Printf("\nphase 2 (2 sift replicas): %.1f FPS delivered\n", float64(after)/phase.Seconds())
	if after > before {
		fmt.Printf("scale-out recovered %.0f%% more throughput\n",
			100*float64(after-before)/float64(max(before, 1)))
	}
}

func max[T int | uint64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
