// Realnet: run the complete real system in one process — the Oakestra-
// style orchestrator schedules the five-service SLA onto registered
// nodes, the placed services start as UDP workers executing the actual
// vision algorithms (scAtteR++ wiring with sidecar queues), and a client
// streams the synthetic clip and prints live results.
//
// The run exercises the observability layer end to end: workers feed a
// shared live metrics registry served over HTTP (scraped mid-stream,
// like an orchestrator would), stamp per-service spans onto every frame,
// and the collected spans are exported as Chrome trace-event JSON
// (realnet-trace.json) for Perfetto / chrome://tracing.
//
//	go run ./examples/realnet
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	scatter "github.com/edge-mar/scatter"
)

func main() {
	// 1. Control plane: register two "machines" with heterogeneous GPUs.
	orch := scatter.NewOrchestrator()
	nodes := []scatter.NodeInfo{
		{Name: "E1", Cluster: "edge", CPUCores: 16, GPUs: 2, GPUArch: "geforce-rtx", MemBytes: 128 << 30},
		{Name: "E2", Cluster: "edge", CPUCores: 64, GPUs: 2, GPUArch: "ampere", MemBytes: 264 << 30},
	}
	for _, n := range nodes {
		if err := orch.RegisterNode(n, time.Now()); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Deploy the scAtteR SLA: GPU services constrained to GPU nodes,
	//    primary+sift pinned to E1, the tail to E2 (the C12 layout).
	services := []scatter.ServiceSLA{
		{Name: "primary", Image: "scatter/primary", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 400 << 20, Machines: []string{"E1"}}},
		{Name: "sift", Image: "scatter/sift", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 1200 << 20, NeedsGPU: true, Machines: []string{"E1"}}},
		{Name: "encoding", Image: "scatter/encoding", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 800 << 20, NeedsGPU: true, Machines: []string{"E2"}}},
		{Name: "lsh", Image: "scatter/lsh", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 600 << 20, NeedsGPU: true, Machines: []string{"E2"}}},
		{Name: "matching", Image: "scatter/matching", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 1000 << 20, NeedsGPU: true, Machines: []string{"E2"}}},
	}
	deployment, err := orch.Deploy(scatter.SLA{AppName: "scatter", Microservices: services})
	if err != nil {
		log.Fatal(err)
	}
	placedOn := map[string]string{}
	fmt.Println("orchestrator placement:")
	for _, inst := range deployment.Instances {
		placedOn[inst.Service] = inst.Node
		fmt.Printf("  %-9s -> %s\n", inst.Service, inst.Node)
	}

	// 3. Data plane: start a real UDP worker for each placed instance.
	//    Every worker feeds the shared live registry and stamps a span
	//    onto each frame it processes, labelled with its placement node.
	video := scatter.NewVideoSource(scatter.VideoConfig{W: 320, H: 180, FPS: 10, Seconds: 2, Seed: 7})
	model, err := scatter.Train(video.ReferenceImages(), scatter.TrainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	procs := scatter.NewProcessors(model, true, 320, 180) // scAtteR++ wiring

	reg := scatter.NewObsRegistry()
	table := map[scatter.Step][]string{}
	router := scatter.NewStaticRouter(nil)
	late := lateRouter{inner: func(step scatter.Step) (string, bool) { return router.Next(step) }}
	var workers []*scatter.Worker
	order := []scatter.Step{scatter.StepPrimary, scatter.StepSIFT, scatter.StepEncoding, scatter.StepLSH, scatter.StepMatching}
	for _, step := range order {
		w, err := scatter.StartWorker(scatter.WorkerConfig{
			Step: step, Mode: scatter.ModeScatterPP, Processor: procs[step],
			ListenAddr: "127.0.0.1:0", Router: late,
			Obs: reg, Host: placedOn[step.String()], TraceSpans: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		workers = append(workers, w)
		table[step] = []string{w.Addr()}
		fmt.Printf("  %-9s up at %s\n", step, w.Addr())
	}
	router.SetRoutes(table)

	// Telemetry endpoint, the node-local view an orchestrator scrapes.
	obsSrv, obsAddr, err := scatter.ServeObs("127.0.0.1:0", reg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer obsSrv.Close()
	fmt.Printf("  telemetry at http://%s/metrics\n", obsAddr)

	// 4. Stream the clip and watch results come back.
	client, err := scatter.StartClient(scatter.ClientConfig{
		ID: 1, FPS: 10, Ingress: table[scatter.StepPrimary][0], Obs: reg,
		NextFrame: func(i int) []byte { return scatter.FramePayload(video, i) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Println("\nstreaming for 5 seconds...")
	deadline := time.After(5 * time.Second)
	scrape := time.After(2500 * time.Millisecond)
	received, detections := 0, 0
	var e2eSum time.Duration
	var spans []scatter.Span
loop:
	for {
		select {
		case res := <-client.Results():
			received++
			detections += len(res.Detections)
			e2eSum += res.E2E
			spans = append(spans, scatter.SpansFromWire(1, res.FrameNo, res.Spans)...)
		case <-scrape:
			// Scrape the live endpoint mid-run, as a monitoring system
			// (or the app-aware orchestrator) would.
			fmt.Println("\nlive /metrics sample at t=2.5s:")
			for _, line := range scrapeMetrics(obsAddr) {
				fmt.Println(" ", line)
			}
		case <-deadline:
			break loop
		}
	}
	fmt.Printf("\nsent=%d received=%d (%.0f%%)\n",
		client.Sent(), received, 100*float64(received)/float64(client.Sent()))
	if received > 0 {
		fmt.Printf("mean e2e=%v, %.1f detections/frame\n",
			(e2eSum / time.Duration(received)).Round(time.Millisecond),
			float64(detections)/float64(received))
	}

	fmt.Println("\nper-service sidecar analytics (worker counters vs live registry):")
	digest := map[string]scatter.ServiceDigest{}
	for _, d := range reg.Digest() {
		digest[d.Service] = d
	}
	for i, step := range order {
		st := workers[i].Stats()
		d := digest[step.String()]
		fmt.Printf("  %-9s received=%-4d processed=%-4d dropped(queue/threshold)=%d/%d  live{processed=%d p95=%v}\n",
			step, st.Received, st.Processed, st.DroppedQueue, st.DroppedThreshold,
			d.Processed, time.Duration(d.P95Micros)*time.Microsecond)
	}

	// 5. Export the collected spans as a Chrome trace: hosts become
	//    processes, services threads, each frame a flow of queue-wait and
	//    processing slices.
	full := 0
	perFrame := map[uint64]int{}
	for _, s := range spans {
		if s.Queue > 0 && s.Proc > 0 {
			perFrame[s.FrameNo]++
		}
	}
	for _, n := range perFrame {
		if n == len(order) {
			full++
		}
	}
	f, err := os.Create("realnet-trace.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := scatter.WriteChromeTrace(f, scatter.NormalizeSpans(spans)); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d spans to realnet-trace.json (%d frames with all %d stages timed end-to-end)\n",
		len(spans), full, len(order))
	fmt.Println("open it in Perfetto or chrome://tracing to see queue vs processing per service")
}

// scrapeMetrics fetches the Prometheus endpoint and returns the
// per-service processed counters — proof the registry is live mid-run.
func scrapeMetrics(addr string) []string {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return []string{"scrape failed: " + err.Error()}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "scatter_service_processed_total") ||
			strings.HasPrefix(line, "scatter_frames_") {
			out = append(out, line)
		}
	}
	return out
}

// lateRouter defers routing lookups until the table is complete.
type lateRouter struct {
	inner func(step scatter.Step) (string, bool)
}

func (r lateRouter) Next(step scatter.Step) (string, bool) { return r.inner(step) }
