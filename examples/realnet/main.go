// Realnet: run the complete real system in one process — the Oakestra-
// style orchestrator schedules the five-service SLA onto registered
// nodes, the placed services start as UDP workers executing the actual
// vision algorithms (scAtteR++ wiring with sidecar queues), and a client
// streams the synthetic clip and prints live results.
//
//	go run ./examples/realnet
package main

import (
	"fmt"
	"log"
	"time"

	scatter "github.com/edge-mar/scatter"
)

func main() {
	// 1. Control plane: register two "machines" with heterogeneous GPUs.
	orch := scatter.NewOrchestrator()
	nodes := []scatter.NodeInfo{
		{Name: "E1", Cluster: "edge", CPUCores: 16, GPUs: 2, GPUArch: "geforce-rtx", MemBytes: 128 << 30},
		{Name: "E2", Cluster: "edge", CPUCores: 64, GPUs: 2, GPUArch: "ampere", MemBytes: 264 << 30},
	}
	for _, n := range nodes {
		if err := orch.RegisterNode(n, time.Now()); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Deploy the scAtteR SLA: GPU services constrained to GPU nodes,
	//    primary+sift pinned to E1, the tail to E2 (the C12 layout).
	services := []scatter.ServiceSLA{
		{Name: "primary", Image: "scatter/primary", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 400 << 20, Machines: []string{"E1"}}},
		{Name: "sift", Image: "scatter/sift", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 1200 << 20, NeedsGPU: true, Machines: []string{"E1"}}},
		{Name: "encoding", Image: "scatter/encoding", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 800 << 20, NeedsGPU: true, Machines: []string{"E2"}}},
		{Name: "lsh", Image: "scatter/lsh", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 600 << 20, NeedsGPU: true, Machines: []string{"E2"}}},
		{Name: "matching", Image: "scatter/matching", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 1000 << 20, NeedsGPU: true, Machines: []string{"E2"}}},
	}
	deployment, err := orch.Deploy(scatter.SLA{AppName: "scatter", Microservices: services})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("orchestrator placement:")
	for _, inst := range deployment.Instances {
		fmt.Printf("  %-9s -> %s\n", inst.Service, inst.Node)
	}

	// 3. Data plane: start a real UDP worker for each placed instance.
	video := scatter.NewVideoSource(scatter.VideoConfig{W: 320, H: 180, FPS: 10, Seconds: 2, Seed: 7})
	model, err := scatter.Train(video.ReferenceImages(), scatter.TrainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	procs := scatter.NewProcessors(model, true, 320, 180) // scAtteR++ wiring

	table := map[scatter.Step][]string{}
	router := scatter.NewStaticRouter(nil)
	late := lateRouter{inner: func(step scatter.Step) (string, bool) { return router.Next(step) }}
	var workers []*scatter.Worker
	order := []scatter.Step{scatter.StepPrimary, scatter.StepSIFT, scatter.StepEncoding, scatter.StepLSH, scatter.StepMatching}
	for _, step := range order {
		w, err := scatter.StartWorker(scatter.WorkerConfig{
			Step: step, Mode: scatter.ModeScatterPP, Processor: procs[step],
			ListenAddr: "127.0.0.1:0", Router: late,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		workers = append(workers, w)
		table[step] = []string{w.Addr()}
		fmt.Printf("  %-9s up at %s\n", step, w.Addr())
	}
	router.SetRoutes(table)

	// 4. Stream the clip and watch results come back.
	client, err := scatter.StartClient(scatter.ClientConfig{
		ID: 1, FPS: 10, Ingress: table[scatter.StepPrimary][0],
		NextFrame: func(i int) []byte { return scatter.FramePayload(video, i) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Println("\nstreaming for 5 seconds...")
	deadline := time.After(5 * time.Second)
	received, detections := 0, 0
	var e2eSum time.Duration
loop:
	for {
		select {
		case res := <-client.Results():
			received++
			detections += len(res.Detections)
			e2eSum += res.E2E
		case <-deadline:
			break loop
		}
	}
	fmt.Printf("\nsent=%d received=%d (%.0f%%)\n",
		client.Sent(), received, 100*float64(received)/float64(client.Sent()))
	if received > 0 {
		fmt.Printf("mean e2e=%v, %.1f detections/frame\n",
			(e2eSum / time.Duration(received)).Round(time.Millisecond),
			float64(detections)/float64(received))
	}
	fmt.Println("\nper-service sidecar analytics:")
	for i, step := range order {
		st := workers[i].Stats()
		fmt.Printf("  %-9s received=%-4d processed=%-4d dropped(queue/threshold)=%d/%d\n",
			step, st.Received, st.Processed, st.DroppedQueue, st.DroppedThreshold)
	}
}

// lateRouter defers routing lookups until the table is complete.
type lateRouter struct {
	inner func(step scatter.Step) (string, bool)
}

func (r lateRouter) Next(step scatter.Step) (string, bool) { return r.inner(step) }
