// Multiclient: reproduce the paper's central finding on the simulated
// edge testbed — scAtteR's stateful pipeline collapses as concurrent
// clients grow (the sift↔matching dependency loop amplifies
// backpressure), while scAtteR++ (stateless sift + sidecar queues)
// degrades gracefully and sustains multi-client loads.
//
//	go run ./examples/multiclient
package main

import (
	"fmt"
	"time"

	scatter "github.com/edge-mar/scatter"
)

func main() {
	duration := 30 * time.Second
	fmt.Printf("C12 deployment [E1,E1,E2,E2,E2], %v virtual time per point\n\n", duration)
	fmt.Printf("%-8s %-10s %-11s %-9s %-9s %s\n",
		"clients", "system", "fps/client", "e2e(ms)", "success", "sift mem (GB)")

	for clients := 1; clients <= 4; clients++ {
		for _, mode := range []scatter.Mode{scatter.ModeScatter, scatter.ModeScatterPP} {
			pt := scatter.RunExperiment(scatter.RunSpec{
				Name:      "C12",
				Mode:      mode,
				Placement: scatter.PlacementC12,
				Clients:   clients,
				Duration:  duration,
				Seed:      int64(100 + clients),
			})
			s := pt.Summary
			fmt.Printf("%-8d %-10s %-11.1f %-9.1f %-9s %.2f\n",
				clients, mode.String(), s.FPSPerClient,
				float64(s.E2EMean)/float64(time.Millisecond),
				fmt.Sprintf("%.0f%%", s.SuccessRate*100),
				float64(pt.Services["sift"].MemBytes)/float64(1<<30))
		}
	}

	fmt.Println("\nTakeaways (paper §4-§5):")
	fmt.Println("  - scAtteR holds ~30 FPS at 1 client but collapses under concurrency;")
	fmt.Println("    sift's in-memory state grows while utilization stalls.")
	fmt.Println("  - scAtteR++ trades bounded latency (sidecar threshold) for ~2.5x+")
	fmt.Println("    multi-client frame rate with flat memory.")
}
