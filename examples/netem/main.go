// Netem: evaluate scAtteR under the paper's emulated mobile access
// networks (Appendix A.1.1) — LTE, 5G, and Wi-Fi 6 with 10 ms mobility
// oscillation — plus the wired-edge baseline, showing that access latency
// shifts E2E latency while loss chips away at the frame rate.
//
//	go run ./examples/netem
package main

import (
	"fmt"
	"time"

	scatter "github.com/edge-mar/scatter"
)

func main() {
	duration := 30 * time.Second
	access := []struct {
		name string
		cfg  scatter.LinkConfig
	}{
		{"wired edge", scatter.LinkConfig{Name: "wired", RTT: time.Millisecond}},
		{"wifi6+mob", scatter.WithMobility(scatter.LinkWiFi6())},
		{"5g+mob", scatter.WithMobility(scatter.Link5G())},
		{"lte+mob", scatter.WithMobility(scatter.LinkLTE())},
	}

	fmt.Printf("scAtteR on E2, mobile clients, %v per point (paper Fig. 9)\n\n", duration)
	fmt.Printf("%-11s %-8s %-11s %-9s %s\n", "access", "clients", "fps/client", "e2e(ms)", "success")
	for _, a := range access {
		cfg := a.cfg
		for _, clients := range []int{1, 4} {
			pt := scatter.RunExperiment(scatter.RunSpec{
				Name:         a.name,
				Mode:         scatter.ModeScatter,
				Placement:    scatter.PlacementC2,
				Clients:      clients,
				Duration:     duration,
				Seed:         int64(50 + clients),
				ClientAccess: &cfg,
			})
			s := pt.Summary
			fmt.Printf("%-11s %-8d %-11.1f %-9.1f %.0f%%\n",
				a.name, clients, s.FPSPerClient,
				float64(s.E2EMean)/float64(time.Millisecond), s.SuccessRate*100)
		}
	}
	fmt.Println("\nAs in the paper: RTT moves end-to-end latency almost one-for-one")
	fmt.Println("(scAtteR has no latency budget, so frames are never dropped for age),")
	fmt.Println("while loss and mobility oscillation mainly show up as lost frames.")
}
