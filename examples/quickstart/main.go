// Quickstart: train a recognition model on the synthetic workplace scene,
// run the five scAtteR services in-process on a short clip, and print
// what the pipeline recognizes and how long each stage takes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	scatter "github.com/edge-mar/scatter"
	"github.com/edge-mar/scatter/internal/wire"
)

func main() {
	// 1. A deterministic stand-in for the paper's pre-recorded 10 s clip.
	video := scatter.NewVideoSource(scatter.VideoConfig{
		W: 320, H: 180, FPS: 10, Seconds: 2, Seed: 7,
	})

	// 2. Train the recognition model from the reference images (PCA +
	//    Fisher encoder + LSH index + per-object SIFT features).
	fmt.Println("training recognition model on reference images...")
	model, err := scatter.Train(video.ReferenceImages(), scatter.TrainConfig{})
	if err != nil {
		log.Fatal(err)
	}
	for _, obj := range model.Objects {
		fmt.Printf("  object %d (%s): %d reference features\n",
			obj.ID, obj.Name, len(obj.Features))
	}

	// 3. Build the five services (scAtteR++ stateless wiring) and push
	//    frames through them in-process.
	procs := scatter.NewProcessors(model, true, 320, 180)
	names := []string{"primary", "sift", "encoding", "lsh", "matching"}

	fmt.Println("\nprocessing frames:")
	stageTotals := make([]time.Duration, wire.NumSteps)
	frames := 0
	for i := 0; i < video.NumFrames(); i += 4 {
		fr := &scatter.Frame{
			ClientID: 1,
			FrameNo:  uint64(i + 1),
			Step:     scatter.StepPrimary,
			Payload:  scatter.FramePayload(video, i),
		}
		for step := 0; step < wire.NumSteps; step++ {
			start := time.Now()
			if err := procs[step].Process(fr); err != nil {
				log.Fatalf("%s: %v", names[step], err)
			}
			stageTotals[step] += time.Since(start)
		}
		frames++
		detections, err := scatter.DecodeResult(fr.Payload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  frame %3d: %d tracked object(s)", i, len(detections))
		for _, d := range detections {
			fmt.Printf("  [obj %d @ (%.0f,%.0f)-(%.0f,%.0f)]",
				d.ObjectID, d.MinX, d.MinY, d.MaxX, d.MaxY)
		}
		fmt.Println()
	}

	fmt.Println("\nmean service latency (pure-Go CPU implementations):")
	for step, total := range stageTotals {
		fmt.Printf("  %-9s %8.1f ms\n", names[step],
			float64(total.Microseconds())/float64(frames)/1000)
	}
}
