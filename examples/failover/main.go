// Failover: demonstrate the orchestrator's automatic service recovery —
// the Oakestra behaviour the paper relies on ("automatically re-deploying
// services upon failures"). E1 and E2 register and heartbeat; the scAtteR
// SLA deploys across them with priority-ordered machine preferences; then E1
// goes silent and the failure detector migrates its services to E2,
// honouring the GPU and memory constraints.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	scatter "github.com/edge-mar/scatter"
)

func main() {
	orch := scatter.NewOrchestrator()
	start := time.Now()
	nodes := []scatter.NodeInfo{
		{Name: "E1", Cluster: "edge", CPUCores: 16, GPUs: 2, GPUArch: "geforce-rtx", MemBytes: 128 << 30},
		{Name: "E2", Cluster: "edge", CPUCores: 64, GPUs: 2, GPUArch: "ampere", MemBytes: 264 << 30},
	}
	for _, n := range nodes {
		if err := orch.RegisterNode(n, start); err != nil {
			log.Fatal(err)
		}
	}

	gpus := []string{"geforce-rtx", "ampere"}
	sla := scatter.SLA{AppName: "scatter", Microservices: []scatter.ServiceSLA{
		{Name: "primary", Image: "scatter/primary", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 400 << 20, Machines: []string{"E1", "E2"}}},
		{Name: "sift", Image: "scatter/sift", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 1200 << 20, NeedsGPU: true, GPUArchIn: gpus, Machines: []string{"E1", "E2"}}},
		{Name: "encoding", Image: "scatter/encoding", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 800 << 20, NeedsGPU: true, GPUArchIn: gpus, Machines: []string{"E2", "E1"}}},
		{Name: "lsh", Image: "scatter/lsh", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 600 << 20, NeedsGPU: true, GPUArchIn: gpus, Machines: []string{"E2", "E1"}}},
		{Name: "matching", Image: "scatter/matching", Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: 1000 << 20, NeedsGPU: true, GPUArchIn: gpus, Machines: []string{"E2", "E1"}}},
	}}
	dep, err := orch.Deploy(sla)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial placement (C12):")
	for _, in := range dep.Instances {
		fmt.Printf("  %-9s -> %s\n", in.Service, in.Node)
	}

	// Both nodes heartbeat for a while...
	for i := 1; i <= 3; i++ {
		at := start.Add(time.Duration(i) * time.Second)
		for _, n := range nodes {
			if err := orch.Heartbeat(n.Name, scatter.NodeStatusAt(at)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nE1 stops heartbeating (power loss)...")
	// E2 keeps reporting; E1 goes silent past the 3s timeout.
	for i := 4; i <= 8; i++ {
		at := start.Add(time.Duration(i) * time.Second)
		if err := orch.Heartbeat("E2", scatter.NodeStatusAt(at)); err != nil {
			log.Fatal(err)
		}
	}
	migrated := orch.DetectFailures(start.Add(8 * time.Second))
	fmt.Printf("failure detector migrated %d instance(s):\n", len(migrated))
	for _, in := range migrated {
		fmt.Printf("  %-9s -> %s\n", in.Service, in.Node)
	}

	dep2, err := orch.Deployment("scatter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal placement:")
	for _, in := range dep2.Instances {
		fmt.Printf("  %-9s -> %s (%s)\n", in.Service, in.Node, in.State)
	}
}
