// Failover: run the real pipeline under the control plane and crash a
// machine mid-stream. E1 and E2 register with the Oakestra-style root;
// the scAtteR SLA deploys across them — sift, the heavy stage, on E1,
// everything else (including the client-facing primary, which in the
// paper runs near the device) on E2 — and the Deployer starts a real
// UDP worker per placed instance. A client streams the synthetic clip
// while the primary→sift link carries 1% injected per-packet loss;
// then E1 "loses power": its worker dies and its heartbeats stop. The
// failure detector migrates sift to E2, the lifecycle hooks start a
// replacement worker, the routing table is repaired — and the
// per-second FPS trace shows throughput collapsing at the crash and
// recovering after the migration.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	scatter "github.com/edge-mar/scatter"
)

func main() {
	// Real vision processors over a trained model (scAtteR++ wiring:
	// stateless sift, so instances can restart anywhere without state
	// hand-off).
	video := scatter.NewVideoSource(scatter.VideoConfig{W: 320, H: 180, FPS: 10, Seconds: 2, Seed: 7})
	fmt.Println("training recognition model...")
	model, err := scatter.Train(video.ReferenceImages(), scatter.TrainConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Data plane: the Deployer starts/stops workers as the control plane
	// schedules instances, and keeps the router in sync. The primary
	// worker's egress is wrapped in a fault injector: 1% per-packet loss
	// on everything it forwards, the paper's lossy-link condition.
	router := scatter.NewStaticRouter(nil)
	var fault *scatter.FaultyEndpoint
	dep, err := scatter.NewDeployer(scatter.DeployerConfig{
		Mode:   scatter.ModeScatterPP,
		Router: router,
		NewProcessor: func(step scatter.Step) scatter.Processor {
			procs := scatter.NewProcessors(model, true, 320, 180)
			return procs[step]
		},
		Configure: func(wc *scatter.WorkerConfig) {
			if wc.Step == scatter.StepPrimary {
				wc.WrapEndpoint = func(ep scatter.Endpoint) scatter.Endpoint {
					fault = scatter.NewFaultyEndpoint(ep, scatter.FaultPolicy{PacketLoss: 0.01}, 42)
					return fault
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()

	// Control plane: hooks wire scheduling decisions to real workers.
	orch := scatter.NewOrchestrator(
		scatter.WithOrchestratorHooks(dep.Hooks()),
		scatter.WithHeartbeatTimeout(2*time.Second),
	)
	nodes := []scatter.NodeInfo{
		{Name: "E1", Cluster: "edge", CPUCores: 16, GPUs: 2, GPUArch: "geforce-rtx", MemBytes: 128 << 30},
		{Name: "E2", Cluster: "edge", CPUCores: 64, GPUs: 2, GPUArch: "ampere", MemBytes: 264 << 30},
	}
	for _, n := range nodes {
		if err := orch.RegisterNode(n, time.Now()); err != nil {
			log.Fatal(err)
		}
	}
	pins := map[string][]string{
		"primary": {"E2", "E1"}, "sift": {"E1", "E2"},
		"encoding": {"E2", "E1"}, "lsh": {"E2", "E1"}, "matching": {"E2", "E1"},
	}
	var services []scatter.ServiceSLA
	mems := map[string]int64{"primary": 400 << 20, "sift": 1200 << 20,
		"encoding": 800 << 20, "lsh": 600 << 20, "matching": 1000 << 20}
	for _, name := range []string{"primary", "sift", "encoding", "lsh", "matching"} {
		services = append(services, scatter.ServiceSLA{
			Name: name, Image: "scatter/" + name, Replicas: 1,
			Requirements: scatter.Requirements{MemBytes: mems[name], Machines: pins[name]},
		})
	}
	deployment, err := orch.Deploy(scatter.SLA{AppName: "scatter", Microservices: services})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial placement:")
	for _, inst := range deployment.Instances {
		fmt.Printf("  %-9s -> %s\n", inst.Service, inst.Node)
	}

	// Heartbeats and failure detection run for real: E2 reports forever,
	// E1 only until the crash.
	e1Alive := atomic.Bool{}
	e1Alive.Store(true)
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(300 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				orch.Heartbeat("E2", scatter.NodeStatusAt(time.Now()))
				if e1Alive.Load() {
					orch.Heartbeat("E1", scatter.NodeStatusAt(time.Now()))
				}
				for _, inst := range orch.DetectFailures(time.Now()) {
					fmt.Printf("  [control] migrated %s -> %s\n", inst.Service, inst.Node)
				}
			}
		}
	}()

	ingress, ok := router.Next(scatter.StepPrimary)
	if !ok {
		log.Fatal("no primary route")
	}
	var received atomic.Uint64
	client, err := scatter.StartClient(scatter.ClientConfig{
		ID: 1, FPS: 10, Ingress: ingress,
		NextFrame: func(i int) []byte { return scatter.FramePayload(video, i) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	go func() {
		for range client.Results() {
			received.Add(1)
		}
	}()

	// Stream healthy for 4 s, crash E1, keep streaming while the control
	// loop detects the failure and repairs the deployment.
	fmt.Println("\nstreaming (per-second delivered FPS):")
	const crashAt, total = 4, 14
	var last uint64
	for sec := 1; sec <= total; sec++ {
		time.Sleep(time.Second)
		now := received.Load()
		marker := ""
		if sec == crashAt {
			killed := dep.Kill("E1")
			e1Alive.Store(false)
			marker = fmt.Sprintf("  <- E1 crashes (%d worker dies, heartbeats stop)", killed)
		}
		fmt.Printf("  t=%2ds  %2d fps%s\n", sec, now-last, marker)
		last = now
	}

	final, err := orch.Deployment("scatter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal placement:")
	for _, inst := range final.Instances {
		fmt.Printf("  %-9s -> %s (%s)\n", inst.Service, inst.Node, inst.State)
	}
	if fault != nil {
		// Dropped counts whole frames: 1% per-packet loss compounds across
		// each frame's UDP fragments (paper Fig. 11), so large frames die
		// far more often than 1%.
		st := fault.Stats()
		fmt.Printf("\ninjected loss at primary egress: frames sent=%d dropped=%d (1%% per-packet)\n",
			st.Sent, st.Dropped)
	}
	stats := dep.Stats()
	fmt.Printf("replacement workers processed: sift=%d primary=%d\n",
		stats["sift"].Processed, stats["primary"].Processed)
}
