// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON snapshot, so the data-plane perf trajectory
// (ns/op, B/op, allocs/op per benchmark) is tracked in version control
// from one PR to the next (see `make bench-dataplane`).
//
// It reads benchmark output on stdin, echoes every line to stderr so the
// run stays watchable, and writes JSON to -o (default stdout). Non-bench
// lines (goos/goarch banners, PASS/ok) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Metrics carries any custom
// b.ReportMetric units (e.g. fps, react_s) beyond the standard four.
type Result struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the JSON document emitted.
type Snapshot struct {
	Note       string   `json:"note"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	note := flag.String("note", "go test -bench -benchmem snapshot", "free-form provenance note")
	flag.Parse()

	snap := Snapshot{Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkWorkerHop/udp/180KiB-8  842  1384671 ns/op  133.10 MB/s  742011 B/op  31 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iters: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
			seen = seen || err == nil
		case "MB/s":
			r.MBPerSec, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = f
			}
		}
	}
	return r, seen
}
