package main

import "testing"

func TestParseLineStandardUnits(t *testing.T) {
	r, ok := parseLine("BenchmarkWorkerHop/udp/180KiB-8  842  1384671 ns/op  133.10 MB/s  742011 B/op  31 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkWorkerHop/udp/180KiB-8" || r.Iters != 842 {
		t.Fatalf("name/iters = %q/%d", r.Name, r.Iters)
	}
	if r.NsPerOp != 1384671 || r.MBPerSec != 133.10 || r.BytesPerOp != 742011 || r.AllocsPerOp != 31 {
		t.Fatalf("standard units misparsed: %+v", r)
	}
	if len(r.Metrics) != 0 {
		t.Fatalf("unexpected custom metrics: %v", r.Metrics)
	}
}

// TestParseLineRecallMetric pins the custom-unit capture the kernel
// benchmarks rely on: BenchmarkKernelPreRank reports recall@10 via
// b.ReportMetric, and BENCH_kernels.json must carry it so the committed
// recall-vs-speedup curve is machine-readable.
func TestParseLineRecallMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkKernelPreRank/n=100000/pr=4-8  1296  917955 ns/op  0.994 recall@10  565 B/op  12 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if got := r.Metrics["recall@10"]; got != 0.994 {
		t.Fatalf("recall@10 = %v, want 0.994", got)
	}
	if r.NsPerOp != 917955 || r.AllocsPerOp != 12 {
		t.Fatalf("standard units misparsed alongside custom metric: %+v", r)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tgithub.com/edge-mar/scatter/internal/vision/lsh\t1.5s",
		"BenchmarkBroken  notanumber  12 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q parsed as benchmark", line)
		}
	}
}
