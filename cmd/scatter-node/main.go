// Command scatter-node hosts scAtteR service workers on one machine: it
// trains (or re-derives deterministically) the recognition model, starts
// the requested services on their UDP ingress addresses, serves sift's
// state-fetch RPC in stateful mode, and optionally registers with a root
// orchestrator and heartbeats hardware telemetry.
//
// The deployment is described by a JSON file:
//
//	{
//	  "mode": "scatter++",
//	  "analysis_width": 320, "analysis_height": 180,
//	  "train_seed": 7,
//	  "services": [
//	    {"step": "primary",  "listen": "127.0.0.1:7001"},
//	    {"step": "sift",     "listen": "127.0.0.1:7002", "state_rpc": "127.0.0.1:7102"},
//	    {"step": "encoding", "listen": "127.0.0.1:7003"},
//	    {"step": "lsh",      "listen": "127.0.0.1:7004"},
//	    {"step": "matching", "listen": "127.0.0.1:7005", "sift_rpc": "127.0.0.1:7102"}
//	  ],
//	  "routes": {
//	    "sift": ["127.0.0.1:7002"], "encoding": ["127.0.0.1:7003"],
//	    "lsh": ["127.0.0.1:7004"], "matching": ["127.0.0.1:7005"]
//	  },
//	  "obs_listen": "127.0.0.1:9100",
//	  "trace_spans": true,
//	  "batch_max": 4, "batch_slack_ms": 10,
//	  "route_stats": {"enabled": true, "ack_timeout_ms": 250},
//	  "fast_path": {"enabled": true, "refresh_every": 30, "min_confidence": 0.5},
//	  "recognition_cache": {"enabled": true, "ttl_ms": 500, "capacity": 1024},
//	  "lsh": {"pre_rank": 4},
//	  "sharding": {"enabled": true, "shards": 4, "replication": 1},
//	  "fault": {"packet_loss": 0.01, "delay_ms": 5, "seed": 42}
//	}
//
// obs_listen serves live telemetry (/metrics, /metrics.json, /healthz,
// /routes, /routes.json, /debug/vars, /debug/pprof); trace_spans stamps
// per-service spans onto frames for end-to-end trace reconstruction at
// the client; batch_max and batch_slack_ms arm the deadline-aware
// micro-batching former on every batch-capable service; route_stats
// upgrades forwarding from static round-robin to stats-driven replica
// selection over live per-replica windows (hop acks feed EWMA latency
// and loss; unhealthy replicas are shed, ejected, and re-admitted after
// probation), published on the obs endpoints and in heartbeats;
// fast_path arms the tracker-gated recognition fast path (confident
// frames answered at primary from matching's published verdicts, skipping
// sift→matching; scatter_fastpath_* series on the obs endpoints);
// recognition_cache shares LSH candidate lists across clients keyed by
// the query's LSH sketch; lsh arms bit-packed Hamming pre-ranking on the
// reference index (pre_rank n cuts the exact cosine pass to n·k
// candidates; 0/omitted is exact mode, and the budget propagates into
// shard replicas); sharding partitions the lsh reference database
// across shard replicas with scatter/gather top-k merge — bit-identical
// results, O(N/shards) per-replica query cost (scatter_shard_* series on
// the obs endpoints; see shardingSpec for serving and remote-gather
// deployments); fault
// (all fields optional) injects drops, compounding per-fragment loss,
// delay, jitter, and duplication on this node's outbound traffic for
// chaos experiments.
//
// Split deployments run scatter-node on several machines with routes
// pointing across hosts, exactly as the paper pins services to E1/E2.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/edge-mar/scatter/internal/agent"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/transport"
	"github.com/edge-mar/scatter/internal/vision/lsh"
	"github.com/edge-mar/scatter/internal/wire"
)

type serviceSpec struct {
	Step     string `json:"step"`
	Listen   string `json:"listen"`
	StateRPC string `json:"state_rpc,omitempty"`
	SiftRPC  string `json:"sift_rpc,omitempty"`
}

// faultSpec configures outbound fault injection for every worker on this
// node — the deployment-level knob for chaos experiments (see
// EXPERIMENTS.md). All fields optional; the zero value injects nothing.
type faultSpec struct {
	Drop       float64 `json:"drop,omitempty"`        // per-message drop probability
	PacketLoss float64 `json:"packet_loss,omitempty"` // per-1500B-fragment loss
	DelayMs    int     `json:"delay_ms,omitempty"`
	JitterMs   int     `json:"jitter_ms,omitempty"`
	Duplicate  float64 `json:"duplicate,omitempty"`
	Seed       int64   `json:"seed,omitempty"` // fault pattern seed (default 1)
}

func (f *faultSpec) policy() transport.FaultPolicy {
	return transport.FaultPolicy{
		Drop:       f.Drop,
		PacketLoss: f.PacketLoss,
		Delay:      time.Duration(f.DelayMs) * time.Millisecond,
		Jitter:     time.Duration(f.JitterMs) * time.Millisecond,
		Duplicate:  f.Duplicate,
	}
}

// fastPathSpec arms the tracker-gated recognition fast path on this node
// (effective when primary and matching are co-located here: matching
// publishes per-client verdicts, primary answers confident frames without
// running sift→matching). Zero fields take the core.FastPathConfig
// defaults. min_hits and tracker_idle_timeout_ms are tracker-lifecycle
// knobs applied to matching whenever this block is present, even with
// enabled=false.
type fastPathSpec struct {
	Enabled              bool    `json:"enabled"`
	MinConfidence        float64 `json:"min_confidence,omitempty"`
	RefreshEvery         int     `json:"refresh_every,omitempty"`
	SkipDecay            float64 `json:"skip_decay,omitempty"`
	MinHits              int     `json:"min_hits,omitempty"`
	TrackerIdleTimeoutMs int     `json:"tracker_idle_timeout_ms,omitempty"`
}

// recognitionCacheSpec arms the cross-client recognition cache at the lsh
// service: candidate lists are keyed by the query's LSH sketch so
// co-located clients viewing the same scene share results. Zero fields
// take the core.RecognitionCacheConfig defaults (500ms TTL, 1024
// entries).
type recognitionCacheSpec struct {
	Enabled  bool `json:"enabled"`
	TTLMs    int  `json:"ttl_ms,omitempty"`
	Capacity int  `json:"capacity,omitempty"`
}

// lshSpec tunes the lsh service's recognition index. pre_rank > 0 arms
// bit-packed Hamming pre-ranking: candidates are cut to pre_rank·k by
// sketch Hamming distance (XOR/popcount over the Add-time sign
// sketches) before the exact cosine pass re-ranks the survivors. 0
// (default) is exact mode — every candidate cosine-ranked, bit-identical
// results. 4 is the recommended trimming setting (recall@10 ≥ 0.95 on
// clustered reference sets; see BENCH_kernels.json). The setting
// propagates into shard replicas when sharding is enabled.
type lshSpec struct {
	PreRank int `json:"pre_rank,omitempty"`
}

// shardServeSpec exposes one of this node's database partitions to
// remote gather clients on its own listen address.
type shardServeSpec struct {
	Shard  int    `json:"shard"`
	Listen string `json:"listen"`
}

// shardingSpec partitions the lsh reference database. With enabled=true
// alone, the node's lsh service queries an in-process sharded index
// (scatter/gather across partitions of the trained model, bit-identical
// to the monolithic index). serve additionally publishes partitions to
// the network for remote gathers; gather makes the lsh service scatter
// to a remote shard fleet instead of its local partitions (outer index
// = shard number, inner = replica addresses). Either way the
// recognition cache keys gain a layout prefix so entries can never
// alias across shard layouts, and scatter_shard_* series appear on the
// obs endpoints.
type shardingSpec struct {
	Enabled         bool             `json:"enabled"`
	Shards          int              `json:"shards,omitempty"`      // default 4
	Replication     int              `json:"replication,omitempty"` // default 1
	Serve           []shardServeSpec `json:"serve,omitempty"`
	Gather          [][]string       `json:"gather,omitempty"`
	GatherTimeoutMs int              `json:"gather_timeout_ms,omitempty"`
	Quorum          int              `json:"quorum,omitempty"` // default: all shards
}

// routeStatsSpec arms stats-driven routing. Zero fields take the
// routestats defaults; see internal/obs/routestats for the semantics.
type routeStatsSpec struct {
	Enabled            bool    `json:"enabled"`
	Alpha              float64 `json:"alpha,omitempty"`
	AckTimeoutMs       int     `json:"ack_timeout_ms,omitempty"`
	MinSamples         uint64  `json:"min_samples,omitempty"`
	DegradeLoss        float64 `json:"degrade_loss,omitempty"`
	EjectLoss          float64 `json:"eject_loss,omitempty"`
	EjectFailures      uint32  `json:"eject_failures,omitempty"`
	ProbationMs        int     `json:"probation_ms,omitempty"`
	ProbationSuccesses uint32  `json:"probation_successes,omitempty"`
	ProbeEvery         uint64  `json:"probe_every,omitempty"`
	Seed               uint64  `json:"seed,omitempty"`
}

func (r *routeStatsSpec) config() routestats.Config {
	return routestats.Config{
		Alpha:              r.Alpha,
		AckTimeout:         time.Duration(r.AckTimeoutMs) * time.Millisecond,
		MinSamples:         r.MinSamples,
		DegradeLoss:        r.DegradeLoss,
		EjectLoss:          r.EjectLoss,
		EjectFailures:      r.EjectFailures,
		Probation:          time.Duration(r.ProbationMs) * time.Millisecond,
		ProbationSuccesses: r.ProbationSuccesses,
		ProbeEvery:         r.ProbeEvery,
		Seed:               r.Seed,
	}
}

type nodeConfig struct {
	Mode           string              `json:"mode"`    // "scatter" or "scatter++"
	Network        string              `json:"network"` // "udp" (default) or "tcp"
	AnalysisWidth  int                 `json:"analysis_width"`
	AnalysisHeight int                 `json:"analysis_height"`
	TrainSeed      int64               `json:"train_seed"`
	Services       []serviceSpec       `json:"services"`
	Routes         map[string][]string `json:"routes"`
	// Orchestrator, when set, is the root control plane URL this node
	// registers with and heartbeats to.
	Orchestrator string                 `json:"orchestrator,omitempty"`
	Node         *orchestrator.NodeInfo `json:"node,omitempty"`
	// ObsListen, when set, serves the live telemetry endpoints
	// (/metrics, /metrics.json, /healthz, /debug/vars, /debug/pprof) on
	// this address.
	ObsListen string `json:"obs_listen,omitempty"`
	// TraceSpans stamps a per-service span onto every processed frame so
	// clients can reconstruct queue-wait vs processing segments. Off by
	// default: benchmark runs carry no tracing overhead.
	TraceSpans bool `json:"trace_spans,omitempty"`
	// Fault, when set, wraps every worker's endpoint in a fault injector
	// applying the policy to all outbound traffic from this node.
	Fault *faultSpec `json:"fault,omitempty"`
	// BatchMax enables deadline-aware micro-batching on every service
	// whose processor supports batch dispatch: the sidecar coalesces up to
	// this many queued frames per dispatch. 0 or 1 disables batching.
	BatchMax int `json:"batch_max,omitempty"`
	// BatchSlackMs is how much of the latency threshold the batch former
	// reserves: it flushes a partial batch once the oldest frame's
	// remaining budget drops to this slack. Default 10ms when batching.
	BatchSlackMs int `json:"batch_slack_ms,omitempty"`
	// RouteStats, when enabled, replaces the static round-robin router
	// with the stats-driven one: per-replica windows fed by hop acks
	// drive power-of-two-choices selection, health ejection, and
	// probation re-admission. The windows are exported on the obs
	// endpoints (scatter_route_*, /routes) and in heartbeats.
	RouteStats *routeStatsSpec `json:"route_stats,omitempty"`
	// FastPath, when enabled, arms the tracker-gated recognition fast
	// path: confident frames are answered at primary from matching's
	// published verdicts and skip sift→encoding→lsh→matching. Exported as
	// scatter_fastpath_* on the obs endpoints.
	FastPath *fastPathSpec `json:"fast_path,omitempty"`
	// LSH tunes the recognition index's ranking kernels (Hamming
	// pre-ranking budget; see lshSpec).
	LSH *lshSpec `json:"lsh,omitempty"`
	// RecognitionCache, when enabled, shares LSH candidate lists across
	// clients keyed by the query's LSH sketch.
	RecognitionCache *recognitionCacheSpec `json:"recognition_cache,omitempty"`
	// Sharding partitions the lsh reference database across shard
	// replicas with scatter/gather top-k merge (see shardingSpec).
	Sharding *shardingSpec `json:"sharding,omitempty"`
}

// admissionEnforcer applies the control plane's per-service verdicts to
// this node's live workers and snapshots the enforcement for the obs
// endpoints. It mirrors agent.Deployer semantics: listed services take
// the verdict, every unlisted service resets to admit — a controller
// restart can never wedge a service shut.
type admissionEnforcer struct {
	byService map[string][]*agent.Worker
}

func newAdmissionEnforcer(services []serviceSpec, workers []*agent.Worker) *admissionEnforcer {
	e := &admissionEnforcer{byService: make(map[string][]*agent.Worker)}
	for i, svc := range services {
		name := strings.ToLower(svc.Step)
		e.byService[name] = append(e.byService[name], workers[i])
	}
	return e
}

func (e *admissionEnforcer) apply(adm []orchestrator.ServiceAdmission) {
	verdicts := make(map[string]core.AdmitState, len(adm))
	for _, a := range adm {
		verdicts[a.Service] = core.ParseAdmitState(a.State)
	}
	for name, ws := range e.byService {
		state := verdicts[name] // absent → AdmitOK
		for _, w := range ws {
			w.SetAdmitState(state)
		}
	}
}

func (e *admissionEnforcer) digest() obs.AdmissionDigest {
	var d obs.AdmissionDigest
	for name, ws := range e.byService {
		s := obs.AdmissionServiceDigest{Service: name, State: core.AdmitOK.String()}
		for _, w := range ws {
			if st := w.AdmitState(); st > core.ParseAdmitState(s.State) {
				s.State = st.String()
			}
			s.Drops += w.Stats().DroppedAdmission
		}
		d.Services = append(d.Services, s)
	}
	return d
}

func main() {
	configPath := flag.String("config", "", "path to the node deployment JSON (required)")
	flag.Parse()
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "scatter-node: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*configPath)
	if err != nil {
		log.Error("read config", "err", err)
		os.Exit(1)
	}
	var cfg nodeConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Error("parse config", "err", err)
		os.Exit(1)
	}
	mode := core.ModeScatter
	switch strings.ToLower(cfg.Mode) {
	case "", "scatter":
	case "scatter++", "scatterpp":
		mode = core.ModeScatterPP
	default:
		log.Error("unknown mode", "mode", cfg.Mode)
		os.Exit(2)
	}
	if cfg.AnalysisWidth <= 0 {
		cfg.AnalysisWidth = 320
	}
	if cfg.AnalysisHeight <= 0 {
		cfg.AnalysisHeight = 180
	}
	if cfg.TrainSeed == 0 {
		cfg.TrainSeed = 7
	}

	// Every node derives the identical model from the shared seed — the
	// stand-in for distributing a trained model artifact.
	gen := trace.NewGenerator(trace.Config{
		W: cfg.AnalysisWidth, H: cfg.AnalysisHeight, Seed: cfg.TrainSeed,
	})
	log.Info("training recognition model", "seed", cfg.TrainSeed)
	model, err := core.Train(gen.ReferenceImages(), core.TrainConfig{Seed: cfg.TrainSeed})
	if err != nil {
		log.Error("train", "err", err)
		os.Exit(1)
	}

	hops := make(map[wire.Step][]string)
	for name, addrs := range cfg.Routes {
		step, err := wire.ParseStep(strings.ToLower(name))
		if err != nil {
			log.Error("route", "err", err)
			os.Exit(2)
		}
		hops[step] = addrs
	}
	var router agent.Router = agent.NewStaticRouter(hops)
	var statsRouter *agent.StatsRouter
	if cfg.RouteStats != nil && cfg.RouteStats.Enabled {
		statsRouter = agent.NewStatsRouter(hops, cfg.RouteStats.config())
		router = statsRouter
		log.Info("stats-driven routing armed",
			"ack_timeout", statsRouter.AckTimeout())
	}

	// Optional Hamming pre-ranking on the recognition index. Set before
	// sharding so NewShardedFrom inherits the budget into every replica
	// (and shard servers serve with it).
	if cfg.LSH != nil && cfg.LSH.PreRank > 0 {
		model.Index.SetPreRank(cfg.LSH.PreRank)
		log.Info("lsh pre-ranking armed", "pre_rank", cfg.LSH.PreRank)
	}

	// Optional database sharding: the lsh service queries partitions of
	// the trained reference index instead of the monolith — in-process by
	// default, a remote shard fleet when gather addresses are configured.
	// Results stay bit-identical to the monolithic index (same seed, same
	// hyperplanes; the gather merges per-shard top-k under a total order).
	var lshIndex core.NNIndex = model.Index
	var sharded *lsh.ShardedIndex
	var shardGather *agent.ShardGather
	var shardServers []*agent.ShardServer
	if cfg.Sharding != nil && cfg.Sharding.Enabled {
		sharded = lsh.NewShardedFrom(model.Index, lsh.ShardConfig{
			Shards:      cfg.Sharding.Shards,
			Replication: cfg.Sharding.Replication,
		})
		lshIndex = sharded
		for _, sv := range cfg.Sharding.Serve {
			if sv.Shard < 0 || sv.Shard >= sharded.Shards() {
				log.Error("shard serve out of range", "shard", sv.Shard, "shards", sharded.Shards())
				os.Exit(2)
			}
			srv, err := agent.StartShardServer(agent.ShardServerConfig{
				Index:      sharded.Replica(sv.Shard, 0),
				Shard:      sv.Shard,
				ListenAddr: sv.Listen,
				Network:    cfg.Network,
			})
			if err != nil {
				log.Error("start shard server", "shard", sv.Shard, "err", err)
				os.Exit(1)
			}
			defer srv.Close()
			shardServers = append(shardServers, srv)
			log.Info("shard server up", "shard", sv.Shard, "addr", srv.Addr())
		}
		if len(cfg.Sharding.Gather) > 0 {
			g, err := agent.NewShardGather(agent.ShardGatherConfig{
				Shards:        cfg.Sharding.Gather,
				Index:         model.Index.Config(),
				Network:       cfg.Network,
				GatherTimeout: time.Duration(cfg.Sharding.GatherTimeoutMs) * time.Millisecond,
				Quorum:        cfg.Sharding.Quorum,
			})
			if err != nil {
				log.Error("shard gather", "err", err)
				os.Exit(1)
			}
			defer g.Close()
			shardGather = g
			lshIndex = g
		}
		log.Info("sharding armed", "shards", sharded.Shards(),
			"replication", sharded.Replication(),
			"serving", len(shardServers), "remote_gather", shardGather != nil)
	}

	// Optional tracker-gated fast path + shared recognition cache: the
	// gate is shared by the primary (reader) and matching (writer) workers
	// on this node; the cache sits behind the lsh worker.
	var gate *core.FastPathGate
	if cfg.FastPath != nil && cfg.FastPath.Enabled {
		gate = core.NewFastPathGate(core.FastPathConfig{
			Enabled:       true,
			MinConfidence: cfg.FastPath.MinConfidence,
			RefreshEvery:  cfg.FastPath.RefreshEvery,
			SkipDecay:     cfg.FastPath.SkipDecay,
			IdleTimeout:   time.Duration(cfg.FastPath.TrackerIdleTimeoutMs) * time.Millisecond,
		})
		log.Info("fast path armed",
			"refresh_every", cfg.FastPath.RefreshEvery,
			"min_confidence", cfg.FastPath.MinConfidence)
	}
	var cache *core.RecognitionCache
	if cfg.RecognitionCache != nil && cfg.RecognitionCache.Enabled {
		cache = core.NewRecognitionCache(core.RecognitionCacheConfig{
			TTL:      time.Duration(cfg.RecognitionCache.TTLMs) * time.Millisecond,
			Capacity: cfg.RecognitionCache.Capacity,
		}, lshIndex)
		log.Info("recognition cache armed",
			"ttl_ms", cfg.RecognitionCache.TTLMs,
			"capacity", cfg.RecognitionCache.Capacity)
	}

	// Optional fault injection: every worker's outbound traffic goes
	// through the same policy, like tc/netem qdiscs on the node's egress.
	var wrapEndpoint func(transport.Endpoint) transport.Endpoint
	if cfg.Fault != nil {
		policy := cfg.Fault.policy()
		if err := policy.Validate(); err != nil {
			log.Error("fault config", "err", err)
			os.Exit(2)
		}
		seed := cfg.Fault.Seed
		if seed == 0 {
			seed = 1
		}
		wrapEndpoint = func(ep transport.Endpoint) transport.Endpoint {
			return transport.NewFaultyEndpoint(ep, policy, seed)
		}
		log.Info("fault injection armed", "drop", policy.Drop,
			"packet_loss", policy.PacketLoss, "delay", policy.Delay)
	}

	// Lifetime context for in-flight state fetches: cancelled at shutdown
	// so a dead sift peer cannot hold matching goroutines to the timeout.
	rootCtx, cancelRoot := context.WithCancel(context.Background())
	defer cancelRoot()

	// Live metrics registry shared by every worker on this node; the
	// span host label prefers the orchestrator node name.
	reg := obs.NewRegistry()
	if statsRouter != nil {
		reg.SetRouteSource(statsRouter.Table().Digest)
	}
	if gate != nil || cache != nil {
		// Gate and cache methods are nil-receiver-safe, so a node running
		// only one of the two exposes zeros for the other.
		reg.SetFastPathSource(func() obs.FastPathDigest {
			return obs.FastPathDigest{
				Skips:       gate.Skips(),
				Fulls:       gate.Fulls(),
				Clients:     gate.ClientCount(),
				CacheHits:   cache.Hits(),
				CacheMisses: cache.Misses(),
				CacheLen:    cache.Len(),
			}
		})
	}
	if sharded != nil {
		reg.SetShardSource(func() obs.ShardDigest {
			if shardGather != nil {
				return shardGather.Digest()
			}
			// In-process sharding: every scatter completes, so fan-outs and
			// gathers come straight off the index counters.
			st := sharded.Stats()
			return obs.ShardDigest{
				Shards:      sharded.Shards(),
				Replication: sharded.Replication(),
				FanOuts:     st.ShardQueries,
				Gathers:     st.Queries,
			}
		})
	}
	hostLabel := ""
	if cfg.Node != nil {
		hostLabel = cfg.Node.Name
	}

	stateless := mode == core.ModeScatterPP
	var workers []*agent.Worker
	for _, svc := range cfg.Services {
		step, err := wire.ParseStep(strings.ToLower(svc.Step))
		if err != nil {
			log.Error("service", "err", err)
			os.Exit(2)
		}
		var proc core.Processor
		switch step {
		case wire.StepPrimary:
			p := core.NewPrimary(cfg.AnalysisWidth, cfg.AnalysisHeight)
			p.SetFastPath(gate)
			proc = p
		case wire.StepSIFT:
			proc = core.NewSIFT(150, stateless)
		case wire.StepEncoding:
			proc = core.NewEncoding(model.PCA, model.Encoder)
		case wire.StepLSH:
			l := core.NewLSHService(lshIndex, 3)
			l.Cache = cache
			proc = l
		case wire.StepMatching:
			var fetch core.StateFetcher
			if !stateless {
				if svc.SiftRPC == "" {
					log.Error("stateful matching requires sift_rpc", "service", svc.Step)
					os.Exit(2)
				}
				fetch = agent.RPCStateFetcherContext(rootCtx, svc.SiftRPC, 2*time.Second)
			}
			m := core.NewMatching(model.Objects, fetch)
			m.SetFastPath(gate)
			if cfg.FastPath != nil {
				m.SetMinHits(cfg.FastPath.MinHits)
				m.SetTrackerIdleTimeout(time.Duration(cfg.FastPath.TrackerIdleTimeoutMs) * time.Millisecond)
			}
			proc = m
		}
		w, err := agent.StartWorker(agent.WorkerConfig{
			Step:           step,
			Mode:           mode,
			Processor:      proc,
			ListenAddr:     svc.Listen,
			Router:         router,
			StateRPCListen: svc.StateRPC,
			Network:        cfg.Network,
			WrapEndpoint:   wrapEndpoint,
			Log:            log,
			Obs:            reg,
			Host:           hostLabel,
			TraceSpans:     cfg.TraceSpans,
			BatchMax:       cfg.BatchMax,
			BatchSlack:     time.Duration(cfg.BatchSlackMs) * time.Millisecond,
		})
		if err != nil {
			log.Error("start worker", "service", svc.Step, "err", err)
			os.Exit(1)
		}
		workers = append(workers, w)
		log.Info("service up", "service", svc.Step, "addr", w.Addr(), "rpc", w.RPCAddr(), "mode", mode.String())
	}
	if len(workers) == 0 {
		log.Error("no services configured")
		os.Exit(2)
	}

	// Admission enforcement point: verdicts arriving on heartbeat
	// responses land on the live workers, and the enforcement state is
	// exported as scatter_admission_* on the obs endpoints.
	enforcer := newAdmissionEnforcer(cfg.Services, workers)
	reg.SetAdmissionSource(enforcer.digest)

	if cfg.ObsListen != "" {
		srv, addr, err := obs.Serve(cfg.ObsListen, reg, nil)
		if err != nil {
			log.Error("serve telemetry", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		log.Info("telemetry up", "addr", addr)
	}

	// Optional control-plane integration: register and heartbeat host
	// telemetry. Hardware metrics alone are the orchestrator view the
	// paper critiques as insufficient for AR QoS; the heartbeat also
	// carries this node's live application digest (the §6 extension) so
	// app-aware policies at the root can read drop ratios directly, and
	// the response downlink carries the root's admission verdicts back to
	// this node's sidecars.
	if cfg.Orchestrator != "" {
		if cfg.Node == nil {
			hostname, _ := os.Hostname()
			cfg.Node = &orchestrator.NodeInfo{
				Name:     hostname,
				Cluster:  "edge",
				CPUCores: runtime.NumCPU(),
				MemBytes: 8 << 30,
			}
		}
		ctl := orchestrator.NewClient(cfg.Orchestrator, 5*time.Second)
		ctl.SetAdmissionHandler(enforcer.apply)
		ctx, cancelHB := context.WithCancel(context.Background())
		defer cancelHB()
		err := ctl.StartHeartbeats(ctx, *cfg.Node, 2*time.Second, func() orchestrator.NodeStatus {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return orchestrator.NodeStatus{
				MemUsed:       int64(ms.Alloc),
				LastHeartbeat: time.Now(),
				Services:      orchestrator.TelemetryFromDigests(reg.Digest()),
				Routes:        orchestrator.RouteTelemetry(reg.RouteDigests()),
			}
		}, func(err error) {
			log.Warn("heartbeat", "err", err)
		})
		if err != nil {
			log.Error("register with orchestrator", "err", err)
			os.Exit(1)
		}
		log.Info("registered with orchestrator", "url", cfg.Orchestrator, "node", cfg.Node.Name)
	}

	// Periodic stats, the node-local view of the sidecar analytics.
	go func() {
		ticker := time.NewTicker(10 * time.Second)
		defer ticker.Stop()
		for range ticker.C {
			for i, w := range workers {
				st := w.Stats()
				log.Info("stats", "service", cfg.Services[i].Step,
					"received", st.Received, "processed", st.Processed,
					"drop_busy", st.DroppedBusy, "drop_queue", st.DroppedQueue,
					"drop_threshold", st.DroppedThreshold, "errors", st.Errors,
					"forward_retries", st.ForwardRetries)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Info("shutting down")
	for _, w := range workers {
		w.Close()
	}
}
