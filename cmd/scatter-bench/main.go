// Command scatter-bench regenerates the paper's evaluation figures on the
// simulated edge-cloud testbed and prints the measured series next to the
// paper's expectations.
//
// Usage:
//
//	scatter-bench -fig all            # every figure + headline scalars
//	scatter-bench -fig fig2,fig6      # specific figures
//	scatter-bench -fig headline -duration 120s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/edge-mar/scatter/internal/experiments"
)

func main() {
	figs := flag.String("fig", "all",
		"comma-separated figures to run: fig2..fig12, headline, appaware, ablations, variance, or 'all'")
	duration := flag.Duration("duration", experiments.DefaultDuration,
		"virtual run length per experiment point (figures 8/12 use their own staged schedule)")
	csvDir := flag.String("csv", "", "also write each figure's tables as CSV files into this directory")
	flag.Parse()

	runners := map[string]func() experiments.Report{
		"fig2":  func() experiments.Report { _, r := experiments.Fig2(*duration); return r },
		"fig3":  func() experiments.Report { _, r := experiments.Fig3(*duration); return r },
		"fig4":  func() experiments.Report { _, r := experiments.Fig4(*duration); return r },
		"fig6":  func() experiments.Report { _, r := experiments.Fig6(*duration); return r },
		"fig7":  func() experiments.Report { _, r := experiments.Fig7(*duration); return r },
		"fig8":  func() experiments.Report { _, r := experiments.Fig8(); return r },
		"fig9":  func() experiments.Report { _, r := experiments.Fig9(*duration); return r },
		"fig10": func() experiments.Report { _, r := experiments.Fig10(*duration); return r },
		"fig11": func() experiments.Report { _, r := experiments.Fig11(*duration); return r },
		"fig12": func() experiments.Report { _, r := experiments.Fig12(); return r },
		"headline": func() experiments.Report {
			_, r := experiments.Headline(*duration)
			return r
		},
		"appaware":  func() experiments.Report { _, r := experiments.AppAware(0); return r },
		"ablations": func() experiments.Report { return experiments.Ablations(*duration) },
		"variance":  func() experiments.Report { _, r := experiments.SeedSensitivity(*duration, 5); return r },
	}
	order := []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "headline", "appaware", "ablations", "variance"}

	var selected []string
	if *figs == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*figs, ",") {
			f = strings.TrimSpace(strings.ToLower(f))
			if f == "" {
				continue
			}
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q (known: %s)\n", f, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, f)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "nothing to run")
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		report := runners[name]()
		fmt.Println(report.Render())
		if *csvDir != "" {
			paths, err := report.WriteCSV(*csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
				os.Exit(1)
			}
			for _, p := range paths {
				fmt.Printf("   [csv: %s]\n", p)
			}
		}
		fmt.Printf("   [%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
