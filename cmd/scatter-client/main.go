// Command scatter-client streams the synthetic workplace clip into a
// running scAtteR deployment over UDP and reports the QoS metrics the
// paper measures: frame rate, end-to-end latency, success rate, and
// jitter.
//
// Usage:
//
//	scatter-client -ingress 127.0.0.1:7001 -fps 30 -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/edge-mar/scatter/internal/agent"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/trace"
)

func main() {
	ingress := flag.String("ingress", "127.0.0.1:7001", "primary service UDP address")
	id := flag.Uint("id", 1, "client identifier")
	fps := flag.Int("fps", 30, "camera frame rate")
	duration := flag.Duration("duration", 30*time.Second, "streaming duration")
	width := flag.Int("w", 320, "capture width")
	height := flag.Int("h", 180, "capture height")
	seed := flag.Int64("seed", 7, "clip seed (must match the nodes' train seed)")
	network := flag.String("network", "udp", "transport: udp or tcp (must match the deployment)")
	flag.Parse()

	gen := trace.NewGenerator(trace.Config{W: *width, H: *height, FPS: *fps, Seed: *seed})
	client, err := agent.StartClient(agent.ClientConfig{
		ID:      uint32(*id),
		FPS:     *fps,
		Ingress: *ingress,
		Network: *network,
		NextFrame: func(i int) []byte {
			img := gen.GrayFrame(i % gen.NumFrames())
			return (&core.Payload{Image: core.GrayToPayload(img)}).Encode()
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scatter-client: %v\n", err)
		os.Exit(1)
	}
	defer client.Close()

	fmt.Printf("streaming %dx%d @ %d FPS to %s for %v\n", *width, *height, *fps, *ingress, *duration)
	deadline := time.After(*duration)
	var e2es []time.Duration
	var detections int
	results := 0
	type stageAgg struct {
		queue, proc time.Duration
		n           int
	}
	stages := map[string]*stageAgg{}
loop:
	for {
		select {
		case res := <-client.Results():
			results++
			detections += len(res.Detections)
			e2es = append(e2es, res.E2E)
			for _, st := range res.Stages {
				agg, ok := stages[st.Step.String()]
				if !ok {
					agg = &stageAgg{}
					stages[st.Step.String()] = agg
				}
				agg.queue += time.Duration(st.QueueMicros) * time.Microsecond
				agg.proc += time.Duration(st.ProcMicros) * time.Microsecond
				agg.n++
			}
		case <-deadline:
			break loop
		}
	}
	sent := client.Sent()
	fmt.Printf("\nsent=%d received=%d success=%.1f%%\n",
		sent, results, 100*float64(results)/float64(max(sent, 1)))
	fmt.Printf("fps=%.1f detections/frame=%.2f\n",
		float64(results)/duration.Seconds(), float64(detections)/float64(max(uint64(results), 1)))
	if len(e2es) > 0 {
		sort.Slice(e2es, func(i, j int) bool { return e2es[i] < e2es[j] })
		var sum time.Duration
		for _, d := range e2es {
			sum += d
		}
		fmt.Printf("e2e mean=%v p50=%v p95=%v\n",
			(sum / time.Duration(len(e2es))).Round(time.Millisecond),
			e2es[len(e2es)/2].Round(time.Millisecond),
			e2es[len(e2es)*95/100].Round(time.Millisecond))
	}
	if len(stages) > 0 {
		fmt.Println("\nper-stage sidecar analytics (from frame state):")
		for _, name := range []string{"primary", "sift", "encoding", "lsh", "matching"} {
			agg, ok := stages[name]
			if !ok || agg.n == 0 {
				continue
			}
			fmt.Printf("  %-9s mean queue=%-8v mean proc=%v\n", name,
				(agg.queue / time.Duration(agg.n)).Round(100*time.Microsecond),
				(agg.proc / time.Duration(agg.n)).Round(100*time.Microsecond))
		}
	}
}
