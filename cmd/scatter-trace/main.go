// Command scatter-trace renders the deterministic synthetic workplace
// clip to PNG files: sampled video frames plus the reference (training)
// images, so the workload driving every experiment can be inspected.
//
// Usage:
//
//	scatter-trace -out /tmp/clip -frames 5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/edge-mar/scatter/internal/trace"
)

func main() {
	out := flag.String("out", "trace-out", "output directory")
	frames := flag.Int("frames", 5, "number of evenly spaced video frames to render")
	width := flag.Int("w", 640, "frame width")
	height := flag.Int("h", 360, "frame height")
	seed := flag.Int64("seed", 7, "clip seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "scatter-trace: %v\n", err)
		os.Exit(1)
	}
	gen := trace.NewGenerator(trace.Config{W: *width, H: *height, Seed: *seed})

	for _, ref := range gen.ReferenceImages() {
		path := filepath.Join(*out, fmt.Sprintf("ref-%s.png", ref.Name))
		if err := trace.WriteGrayPNG(ref.Img, path); err != nil {
			fmt.Fprintf(os.Stderr, "scatter-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	if *frames > 0 {
		step := gen.NumFrames() / *frames
		if step < 1 {
			step = 1
		}
		for i := 0; i < gen.NumFrames(); i += step {
			path := filepath.Join(*out, fmt.Sprintf("frame-%03d.png", i))
			if err := trace.WritePNG(gen.Frame(i), path); err != nil {
				fmt.Fprintf(os.Stderr, "scatter-trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
			gt := gen.GroundTruth(i)
			for _, p := range gt {
				if p.Visible {
					fmt.Printf("  %-9s at offset (%.0f, %.0f) scale %.2f\n",
						trace.ObjectName(p.ObjectID), p.OffX, p.OffY, p.Scale)
				}
			}
		}
	}
}
