// Command scatter-spans produces Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing) from per-frame pipeline spans. Hosts
// become trace processes, services threads, and every frame a flow of
// queue-wait and processing slices — the visual form of the paper's
// queueing analysis.
//
// Two modes:
//
//	scatter-spans -out trace.json                  # run a traced simulation
//	scatter-spans -in spans.json -out trace.json   # convert a span dump
//
// The simulation mode runs the C12 two-host deployment (primary+sift on
// E1, the tail on E2) with span tracing enabled and exports whatever it
// recorded. The convert mode reads a JSON array of spans — the shape
// /spans on a telemetry endpoint returns — and renders it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/experiments"
	"github.com/edge-mar/scatter/internal/obs"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scatter-spans: %v\n", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "JSON span dump to convert (default: run a traced simulation)")
	out := flag.String("out", "trace.json", "output Chrome trace file")
	mode := flag.String("mode", "scatter++", "simulated pipeline mode: scatter or scatter++")
	clients := flag.Int("clients", 3, "simulated concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "simulated run length (virtual time)")
	maxSpans := flag.Int("max-spans", 0, "span recorder bound (0 = default)")
	flag.Parse()

	var spans []obs.Span
	if *in != "" {
		data, err := os.ReadFile(*in)
		if err != nil {
			fail(err)
		}
		if err := json.Unmarshal(data, &spans); err != nil {
			fail(fmt.Errorf("parse %s: %w", *in, err))
		}
		spans = obs.Normalize(spans)
	} else {
		m := core.ModeScatter
		switch strings.ToLower(*mode) {
		case "scatter":
		case "scatter++", "scatterpp":
			m = core.ModeScatterPP
		default:
			fail(fmt.Errorf("unknown mode %q", *mode))
		}
		pt := experiments.Run(experiments.RunSpec{
			Name:          "spans-" + m.String(),
			Mode:          m,
			Placement:     experiments.ConfigC12,
			Clients:       *clients,
			Duration:      *duration,
			Trace:         true,
			TraceMaxSpans: *maxSpans,
		})
		spans = pt.Spans()
		fmt.Printf("simulated %s, %d clients, %v: %d spans, %.1f%% frames delivered\n",
			m, *clients, *duration, len(spans), pt.Summary.SuccessRate*100)
	}
	if len(spans) == 0 {
		fail(fmt.Errorf("no spans to export"))
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d spans to %s\n", len(spans), *out)
}
