// Command scatter-spans produces Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing) from per-frame pipeline spans. Hosts
// become trace processes, services threads, and every frame a flow of
// queue-wait and processing slices — the visual form of the paper's
// queueing analysis.
//
// Two modes:
//
//	scatter-spans -out trace.json                  # run a traced simulation
//	scatter-spans -in spans.json -out trace.json   # convert a span dump
//
// The simulation mode runs the C12 two-host deployment (primary+sift on
// E1, the tail on E2) with span tracing enabled and exports whatever it
// recorded. The convert mode reads a JSON array of spans — the shape
// /spans on a telemetry endpoint returns — and renders it.
//
// With -routes the simulation also enables stats-driven weighted routing
// over a second sift replica on E2 and dumps the final route table
// (per-replica weights, health states, loss/latency windows) alongside
// the trace — the same view a live node serves at /routes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/experiments"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/wire"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "scatter-spans: %v\n", err)
	os.Exit(1)
}

// writeRoutes renders the route table the way /routes does on a live
// node, to the named file or stdout for "-".
func writeRoutes(dest string, digests []routestats.RouteDigest) error {
	if dest == "-" {
		obs.WriteRouteTable(os.Stdout, digests)
		return nil
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	obs.WriteRouteTable(f, digests)
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote route table to %s\n", dest)
	return nil
}

func main() {
	in := flag.String("in", "", "JSON span dump to convert (default: run a traced simulation)")
	out := flag.String("out", "trace.json", "output Chrome trace file")
	mode := flag.String("mode", "scatter++", "simulated pipeline mode: scatter or scatter++")
	clients := flag.Int("clients", 3, "simulated concurrent clients")
	duration := flag.Duration("duration", 10*time.Second, "simulated run length (virtual time)")
	maxSpans := flag.Int("max-spans", 0, "span recorder bound (0 = default)")
	routes := flag.String("routes", "",
		`dump the final route table (weights/health) to this file, "-" for stdout; enables weighted routing with a second sift replica on E2`)
	flag.Parse()

	var spans []obs.Span
	if *in != "" {
		if *routes != "" {
			fail(fmt.Errorf("-routes needs a simulation run, not a span conversion"))
		}
		data, err := os.ReadFile(*in)
		if err != nil {
			fail(err)
		}
		if err := json.Unmarshal(data, &spans); err != nil {
			fail(fmt.Errorf("parse %s: %w", *in, err))
		}
		spans = obs.Normalize(spans)
	} else {
		m := core.ModeScatter
		switch strings.ToLower(*mode) {
		case "scatter":
		case "scatter++", "scatterpp":
			m = core.ModeScatterPP
		default:
			fail(fmt.Errorf("unknown mode %q", *mode))
		}
		spec := experiments.RunSpec{
			Name:          "spans-" + m.String(),
			Mode:          m,
			Placement:     experiments.ConfigC12,
			Clients:       *clients,
			Duration:      *duration,
			Trace:         true,
			TraceMaxSpans: *maxSpans,
		}
		if *routes != "" {
			// Give the router something to choose between: a second sift
			// replica on E2 on top of the C12 layout.
			spec.Placement = func(w *experiments.World) core.Placement {
				pl := experiments.ConfigC12(w)
				pl[wire.StepSIFT] = []*testbed.Machine{w.E1, w.E2}
				return pl
			}
			spec.Options = core.Options{WeightedRouting: true,
				RouteStats: routestats.Config{Seed: 1}}
		}
		pt := experiments.Run(spec)
		spans = pt.Spans()
		fmt.Printf("simulated %s, %d clients, %v: %d spans, %.1f%% frames delivered\n",
			m, *clients, *duration, len(spans), pt.Summary.SuccessRate*100)
		if *routes != "" {
			if err := writeRoutes(*routes, pt.RouteDigests()); err != nil {
				fail(err)
			}
		}
	}
	if len(spans) == 0 {
		fail(fmt.Errorf("no spans to export"))
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := obs.WriteChromeTrace(f, spans); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d spans to %s\n", len(spans), *out)
}
