// Command scatter-orchestrator runs the Oakestra-style root orchestrator
// with its HTTP control plane: node registration, SLA deployment with
// hardware constraints, heartbeat monitoring, and automatic failure
// re-deployment.
//
// Usage:
//
//	scatter-orchestrator -listen :8600 -heartbeat-timeout 5s
//
// Node agents register via POST /api/v1/nodes and heartbeat via
// POST /api/v1/nodes/{name}/heartbeat; applications deploy by POSTing an
// SLA document to /api/v1/apps. The same listener also serves /healthz,
// Prometheus-style /metrics (node liveness plus the per-service
// application telemetry aggregated from heartbeats), the aggregated JSON
// at /api/v1/telemetry, /debug/vars, and /debug/pprof.
package main

import (
	"expvar"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/edge-mar/scatter/internal/orchestrator"
)

func main() {
	listen := flag.String("listen", ":8600", "control-plane listen address")
	hbTimeout := flag.Duration("heartbeat-timeout", 5*time.Second,
		"mark nodes dead after this silence and re-deploy their services")
	detectEvery := flag.Duration("detect-every", 2*time.Second, "failure-detection interval")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	root := orchestrator.NewRoot(
		orchestrator.WithHeartbeatTimeout(*hbTimeout),
		orchestrator.WithHooks(orchestrator.Hooks{
			OnSchedule: func(in orchestrator.Instance) {
				log.Info("scheduled", "instance", in.Key(), "node", in.Node)
			},
			OnRemove: func(in orchestrator.Instance) {
				log.Info("removed", "instance", in.Key(), "node", in.Node)
			},
		}),
	)
	api := orchestrator.NewAPIServer(root)

	go func() {
		ticker := time.NewTicker(*detectEvery)
		defer ticker.Stop()
		for now := range ticker.C {
			for _, inst := range root.DetectFailures(now) {
				log.Warn("migrated after node failure", "instance", inst.Key(), "node", inst.Node)
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	log.Info("root orchestrator listening", "addr", *listen)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		log.Error("serve", "err", err)
		os.Exit(1)
	}
}
