// Command scatter-orchestrator runs the Oakestra-style root orchestrator
// with its HTTP control plane: node registration, SLA deployment with
// hardware constraints, heartbeat monitoring, and automatic failure
// re-deployment.
//
// Usage:
//
//	scatter-orchestrator -listen :8600 -heartbeat-timeout 5s
//
// Node agents register via POST /api/v1/nodes and heartbeat via
// POST /api/v1/nodes/{name}/heartbeat; applications deploy by POSTing an
// SLA document to /api/v1/apps. The same listener also serves /healthz,
// Prometheus-style /metrics (node liveness plus the per-service
// application telemetry aggregated from heartbeats), the aggregated JSON
// at /api/v1/telemetry, /debug/vars, and /debug/pprof.
//
// With -autoscale the root also runs the live app-aware control loop:
// every -autoscale-period it windows the merged heartbeat telemetry,
// lets the chosen policy (hardware | qos) decide, and scales the
// distressed services of -autoscale-app through the scheduler up to
// -autoscale-max replicas (idle services retire down to -autoscale-min
// when -autoscale-scaledown is set). -admission escalates to admission
// control when scale-out is capped or unschedulable: per-service
// admit/degrade/reject verdicts ride back to the nodes on heartbeat
// responses and are enforced at sidecar ingress. The loop's status is
// served at /api/v1/autoscaler and as scatter_autoscale_* on /metrics.
package main

import (
	"context"
	"expvar"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/edge-mar/scatter/internal/appaware"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/orchestrator"
)

func main() {
	listen := flag.String("listen", ":8600", "control-plane listen address")
	hbTimeout := flag.Duration("heartbeat-timeout", 5*time.Second,
		"mark nodes dead after this silence and re-deploy their services")
	detectEvery := flag.Duration("detect-every", 2*time.Second, "failure-detection interval")
	autoscale := flag.String("autoscale", "",
		"autoscaling policy: hardware (utilization thresholds) or qos (windowed drop ratio + p95); empty disables the loop")
	asApp := flag.String("autoscale-app", "scatter", "application the control loop manages")
	asPeriod := flag.Duration("autoscale-period", 2*time.Second, "control-loop evaluation interval")
	asMax := flag.Int("autoscale-max", 3, "replica cap per service")
	asMin := flag.Int("autoscale-min", 1, "replica floor for scale-in")
	asDropThresh := flag.Float64("autoscale-drop-threshold", 0,
		"qos: windowed drop-ratio trigger (0 = policy default 0.1)")
	asP95 := flag.Uint64("autoscale-p95-us", 0,
		"qos: p95 service-latency trigger in microseconds (0 disables the latency arm)")
	asScaleDown := flag.Bool("autoscale-scaledown", false, "qos: retire replicas of idle services")
	admission := flag.Bool("admission", false,
		"escalate to admission control (degrade/reject at sidecar ingress) when scale-out is exhausted")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	root := orchestrator.NewRoot(
		orchestrator.WithHeartbeatTimeout(*hbTimeout),
		orchestrator.WithHooks(orchestrator.Hooks{
			OnSchedule: func(in orchestrator.Instance) {
				log.Info("scheduled", "instance", in.Key(), "node", in.Node)
			},
			OnRemove: func(in orchestrator.Instance) {
				log.Info("removed", "instance", in.Key(), "node", in.Node)
			},
		}),
	)
	api := orchestrator.NewAPIServer(root)

	if *autoscale != "" {
		var policy appaware.Policy
		switch *autoscale {
		case "hardware":
			policy = appaware.HardwarePolicy{}
		case "qos":
			policy = appaware.QoSPolicy{
				DropThreshold:      *asDropThresh,
				P95ThresholdMicros: *asP95,
				EnableScaleDown:    *asScaleDown,
			}
		default:
			log.Error("unknown autoscale policy", "policy", *autoscale)
			os.Exit(2)
		}
		as := orchestrator.NewAutoscaler(root, orchestrator.AutoscalerConfig{
			App:              *asApp,
			Period:           *asPeriod,
			Policy:           policy,
			MaxReplicas:      *asMax,
			MinReplicas:      *asMin,
			AdmissionEnabled: *admission,
			OnAdmission: func(service string, state core.AdmitState, reason string) {
				log.Warn("admission verdict", "service", service,
					"state", state.String(), "reason", reason)
			},
		})
		api.SetAutoscaler(as)
		go as.Run(context.Background())
		log.Info("autoscaler armed", "policy", policy.Name(), "app", *asApp,
			"period", *asPeriod, "max_replicas", *asMax, "admission", *admission)
	}

	go func() {
		ticker := time.NewTicker(*detectEvery)
		defer ticker.Stop()
		for now := range ticker.C {
			for _, inst := range root.DetectFailures(now) {
				log.Warn("migrated after node failure", "instance", inst.Key(), "node", inst.Node)
			}
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	log.Info("root orchestrator listening", "addr", *listen)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		log.Error("serve", "err", err)
		os.Exit(1)
	}
}
