// Command scatter-orchestrator runs the Oakestra-style root orchestrator
// with its HTTP control plane: node registration, SLA deployment with
// hardware constraints, heartbeat monitoring, and automatic failure
// re-deployment.
//
// Usage:
//
//	scatter-orchestrator -listen :8600 -heartbeat-timeout 5s
//
// Node agents register via POST /api/v1/nodes and heartbeat via
// POST /api/v1/nodes/{name}/heartbeat; applications deploy by POSTing an
// SLA document to /api/v1/apps.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"time"

	"github.com/edge-mar/scatter/internal/orchestrator"
)

func main() {
	listen := flag.String("listen", ":8600", "control-plane listen address")
	hbTimeout := flag.Duration("heartbeat-timeout", 5*time.Second,
		"mark nodes dead after this silence and re-deploy their services")
	detectEvery := flag.Duration("detect-every", 2*time.Second, "failure-detection interval")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	root := orchestrator.NewRoot(
		orchestrator.WithHeartbeatTimeout(*hbTimeout),
		orchestrator.WithHooks(orchestrator.Hooks{
			OnSchedule: func(in orchestrator.Instance) {
				log.Info("scheduled", "instance", in.Key(), "node", in.Node)
			},
			OnRemove: func(in orchestrator.Instance) {
				log.Info("removed", "instance", in.Key(), "node", in.Node)
			},
		}),
	)
	api := orchestrator.NewAPIServer(root)

	go func() {
		ticker := time.NewTicker(*detectEvery)
		defer ticker.Stop()
		for now := range ticker.C {
			for _, inst := range root.DetectFailures(now) {
				log.Warn("migrated after node failure", "instance", inst.Key(), "node", inst.Node)
			}
		}
	}()

	log.Info("root orchestrator listening", "addr", *listen)
	if err := http.ListenAndServe(*listen, api.Handler()); err != nil {
		log.Error("serve", "err", err)
		os.Exit(1)
	}
}
