package scatter_test

import (
	"fmt"
	"time"

	scatter "github.com/edge-mar/scatter"
)

// ExampleTrain shows the minimal recognition workflow: derive a model
// from the synthetic reference images and run one frame through the five
// services in-process.
func ExampleTrain() {
	video := scatter.NewVideoSource(scatter.VideoConfig{
		W: 320, H: 180, FPS: 10, Seconds: 1, Seed: 7,
	})
	model, err := scatter.Train(video.ReferenceImages(), scatter.TrainConfig{})
	if err != nil {
		panic(err)
	}
	procs := scatter.NewProcessors(model, true, 320, 180)
	fr := &scatter.Frame{
		ClientID: 1, FrameNo: 1,
		Step:    scatter.StepPrimary,
		Payload: scatter.FramePayload(video, 0),
	}
	for step := range procs {
		if err := procs[step].Process(fr); err != nil {
			panic(err)
		}
	}
	detections, err := scatter.DecodeResult(fr.Payload)
	if err != nil {
		panic(err)
	}
	fmt.Println("recognized objects:", len(detections) > 0)
	// Output: recognized objects: true
}

// ExampleRunExperiment reproduces one point of the paper's evaluation:
// scAtteR on E1 with one client holds ≈30 FPS.
func ExampleRunExperiment() {
	pt := scatter.RunExperiment(scatter.RunSpec{
		Name:      "demo",
		Mode:      scatter.ModeScatter,
		Placement: scatter.PlacementC1,
		Clients:   1,
		Duration:  20 * time.Second,
		Seed:      11,
	})
	fmt.Println("single-client FPS above 25:", pt.Summary.FPSPerClient > 25)
	// Output: single-client FPS above 25: true
}

// ExampleNewOrchestrator schedules the scAtteR SLA onto a registered
// GPU node under hardware constraints.
func ExampleNewOrchestrator() {
	orch := scatter.NewOrchestrator()
	_ = orch.RegisterNode(scatter.NodeInfo{
		Name: "edge-1", Cluster: "edge", CPUCores: 16,
		GPUs: 2, GPUArch: "ampere", MemBytes: 64 << 30,
	}, time.Now())
	dep, err := orch.Deploy(scatter.SLA{
		AppName: "scatter",
		Microservices: []scatter.ServiceSLA{{
			Name: "sift", Image: "scatter/sift", Replicas: 1,
			Requirements: scatter.Requirements{NeedsGPU: true},
		}},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(dep.Instances[0].Service, "on", dep.Instances[0].Node)
	// Output: sift on edge-1
}
