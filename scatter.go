// Package scatter is the public API of the scAtteR / scAtteR++
// reproduction: a distributed stream-processing augmented-reality
// pipeline (primary → sift → encoding → lsh → matching), an
// Oakestra-style hierarchical edge orchestrator, a real UDP/RPC runtime
// executing pure-Go vision algorithms, and a deterministic edge-cloud
// testbed simulator that regenerates every figure of the CoNEXT 2023
// paper "Characterizing Distributed Mobile Augmented Reality
// Applications at the Edge".
//
// The package is a facade over the internal implementation:
//
//   - Pipeline semantics and the simulated testbed: Pipeline, Placement,
//     Options, Mode (scAtteR vs scAtteR++), NewWorld, RunExperiment.
//   - Real vision processing: Train builds a recognition Model from
//     reference images; NewProcessors returns the five services; the
//     agent types run them over UDP with sidecars and state-fetch RPC.
//   - Orchestration: NewOrchestrator, SLA, and the HTTP control plane.
//   - Observability: per-frame Span tracing across sim and real runtime,
//     the live ObsRegistry with Prometheus/JSON exposition (ServeObs),
//     per-replica routing windows with QoS-aware health (StatsRouter,
//     RouteDigest, the /routes debug view), and Chrome trace export
//     (WriteChromeTrace) for Perfetto.
//   - Experiments: the Fig2…Fig12 and Headline runners regenerate the
//     paper's evaluation.
//
// See examples/ for runnable entry points and EXPERIMENTS.md for the
// paper-versus-measured record.
package scatter

import (
	"context"
	"io"
	"net/http"
	"time"

	"github.com/edge-mar/scatter/internal/agent"
	"github.com/edge-mar/scatter/internal/appaware"
	"github.com/edge-mar/scatter/internal/core"
	"github.com/edge-mar/scatter/internal/experiments"
	"github.com/edge-mar/scatter/internal/metrics"
	"github.com/edge-mar/scatter/internal/netem"
	"github.com/edge-mar/scatter/internal/obs"
	"github.com/edge-mar/scatter/internal/obs/routestats"
	"github.com/edge-mar/scatter/internal/orchestrator"
	"github.com/edge-mar/scatter/internal/testbed"
	"github.com/edge-mar/scatter/internal/trace"
	"github.com/edge-mar/scatter/internal/transport"
	"github.com/edge-mar/scatter/internal/vision/lsh"
	"github.com/edge-mar/scatter/internal/wire"
)

// Pipeline identifiers and semantics.
type (
	// Mode selects scAtteR (stateful, drop-if-busy) or scAtteR++
	// (stateless sift + sidecar queues).
	Mode = core.Mode
	// Options tunes pipeline semantics (threshold, queue capacity,
	// fetch/state timeouts).
	Options = core.Options
	// Step identifies a pipeline stage.
	Step = wire.Step
	// Frame is the envelope exchanged between services.
	Frame = wire.Frame
)

// Pipeline modes.
const (
	ModeScatter   = core.ModeScatter
	ModeScatterPP = core.ModeScatterPP
)

// Pipeline steps.
const (
	StepPrimary  = wire.StepPrimary
	StepSIFT     = wire.StepSIFT
	StepEncoding = wire.StepEncoding
	StepLSH      = wire.StepLSH
	StepMatching = wire.StepMatching
	StepDone     = wire.StepDone
)

// Vision model and real processors.
type (
	// Model is a trained recognition model (PCA + Fisher + LSH +
	// reference features).
	Model = core.Model
	// TrainConfig controls model building.
	TrainConfig = core.TrainConfig
	// Processor is one real pipeline service.
	Processor = core.Processor
	// BatchHandler is a Processor that also accepts whole micro-batches,
	// letting the sidecar's deadline-aware batch former amortize
	// per-dispatch setup across coalesced frames.
	BatchHandler = core.BatchHandler
	// Payload is the typed frame content of the real pipeline.
	Payload = core.Payload
	// Detection is a recognized/tracked object with bounding box.
	Detection = core.Detection
	// FastPathConfig tunes the tracker-gated recognition fast path
	// (confidence floor, forced-refresh cadence, idle eviction).
	FastPathConfig = core.FastPathConfig
	// FastPathGate is the per-node verdict store the matching service
	// publishes into and the primary service answers confident frames
	// from, skipping sift→encoding→lsh→matching.
	FastPathGate = core.FastPathGate
	// RecognitionCacheConfig tunes the cross-client recognition cache
	// (TTL, capacity).
	RecognitionCacheConfig = core.RecognitionCacheConfig
	// RecognitionCache shares LSH candidate lists across clients keyed by
	// the query's LSH sketch.
	RecognitionCache = core.RecognitionCache
	// LSHIndex is the multi-table LSH index a trained Model carries
	// (Model.Index) — the sketch source for the recognition cache.
	LSHIndex = lsh.Index
	// LSHConfig parameterizes an LSHIndex: vector dimensionality, table
	// shape, multi-probe budget, seed, and the Hamming pre-ranking
	// budget (PreRank; 0 = exact mode).
	LSHConfig = lsh.Config
	// NNIndex is the nearest-neighbour backend seam the lsh service and
	// recognition cache query: satisfied by *LSHIndex, *ShardedIndex, and
	// *ShardGather interchangeably, with bit-identical results.
	NNIndex = core.NNIndex
	// PreRanker is the retuning seam for Hamming pre-ranking: *LSHIndex
	// and *ShardedIndex accept a live SetPreRank(n); 0 restores exact
	// bit-identical ranking.
	PreRanker = core.PreRanker
	// FastPathDigest is the live fast-path snapshot exposed as
	// scatter_fastpath_* series by the obs registry.
	FastPathDigest = obs.FastPathDigest
	// ReferenceImage is a canonical training view of one object.
	ReferenceImage = trace.ReferenceImage
	// VideoSource generates the synthetic workplace clip.
	VideoSource = trace.Generator
	// VideoConfig parameterizes the synthetic clip.
	VideoConfig = trace.Config
)

// Train builds a recognition model from reference images.
func Train(refs []ReferenceImage, cfg TrainConfig) (*Model, error) {
	return core.Train(refs, cfg)
}

// NewProcessors returns the five real services over a trained model.
func NewProcessors(m *Model, stateless bool, analysisW, analysisH int) [wire.NumSteps]Processor {
	return core.NewProcessors(m, stateless, analysisW, analysisH)
}

// NewFastProcessors is NewProcessors with the ORB fast extractor at the
// detection stage (train the model with TrainConfig.FastExtractor).
func NewFastProcessors(m *Model, stateless bool, analysisW, analysisH int) [wire.NumSteps]Processor {
	return core.NewFastProcessors(m, stateless, analysisW, analysisH)
}

// NewFastPathGate builds a tracker-gated fast-path verdict store; wire it
// into the primary and matching processors with their SetFastPath methods
// and expose it via ObsRegistry.SetFastPathSource.
func NewFastPathGate(cfg FastPathConfig) *FastPathGate { return core.NewFastPathGate(cfg) }

// NewRecognitionCache builds a cross-client recognition cache over a
// recognition index (a trained model's LSH index, or a sharded/gather
// backend — partitioned backends prefix keys with their layout
// signature so entries never alias across layouts); install it as an
// LSHService's Cache.
func NewRecognitionCache(cfg RecognitionCacheConfig, index NNIndex) *RecognitionCache {
	return core.NewRecognitionCache(cfg, index)
}

// Sharded reference database with scatter/gather top-k merge.
type (
	// ShardConfig shapes a sharded index: partition count, per-shard
	// replication, and the underlying LSH parameters.
	ShardConfig = lsh.ShardConfig
	// ShardedIndex partitions an LSH reference database across shards by
	// hash space; queries scatter to every shard and merge per-shard
	// top-k under a deterministic total order, bit-identical to the
	// monolithic index at O(N/shards) per-shard cost.
	ShardedIndex = lsh.ShardedIndex
	// ShardStats counts a sharded index's scatter activity.
	ShardStats = lsh.ShardStats
	// Neighbor is one ranked nearest-neighbour result.
	Neighbor = lsh.Neighbor
	// ShardServer serves one shard replica's queries over the wire.
	ShardServer = agent.ShardServer
	// ShardServerConfig configures a shard server.
	ShardServerConfig = agent.ShardServerConfig
	// ShardGather is the sidecar-side scatter/gather client over a shard
	// fleet: it fans queries to every shard, picks replicas by live
	// route health, gathers per-shard top-k under a timeout/quorum
	// policy, and merges deterministically.
	ShardGather = agent.ShardGather
	// ShardGatherConfig configures a gather client (fleet addresses,
	// LSH parameters, gather timeout, quorum, replica health windows).
	ShardGatherConfig = agent.ShardGatherConfig
	// ShardGatherStats counts a gather client's fan-out activity and
	// degradations.
	ShardGatherStats = agent.ShardGatherStats
	// ShardDigest is the live sharding snapshot exposed as
	// scatter_shard_* series by the obs registry.
	ShardDigest = obs.ShardDigest
	// ShardHealth is the orchestrator's per-shard replica coverage view.
	ShardHealth = orchestrator.ShardHealth
	// ShardingSimOptions mirrors sharding in the simulated pipeline
	// (per-shard compute scaling, gather overhead, loss/quorum policy).
	ShardingSimOptions = core.ShardingSimOptions
)

// NewLSHIndex creates an empty LSH index — the recognition database
// kernel: SoA vector arena, Add-time norm caching, packed sign
// sketches, and optional Hamming pre-ranking (LSHConfig.PreRank).
func NewLSHIndex(cfg LSHConfig) *LSHIndex { return lsh.New(cfg) }

// ShardOfID maps a reference-object ID to its owning shard.
func ShardOfID(id int, shards int) int { return lsh.ShardOf(id, shards) }

// NewShardedIndex creates an empty sharded index.
func NewShardedIndex(cfg ShardConfig) *ShardedIndex { return lsh.NewSharded(cfg) }

// NewShardedFrom partitions an existing index's contents across shards,
// inheriting its LSH parameters so results stay bit-identical.
func NewShardedFrom(src *LSHIndex, cfg ShardConfig) *ShardedIndex {
	return lsh.NewShardedFrom(src, cfg)
}

// MergeNeighbors k-way-merges per-shard top-k lists (each sorted by the
// index's total order) into dst, allocation-free when dst has capacity.
func MergeNeighbors(dst []Neighbor, lists [][]Neighbor, k int) []Neighbor {
	return lsh.MergeNeighbors(dst, lists, k)
}

// StartShardServer serves one shard replica on its listen address.
func StartShardServer(cfg ShardServerConfig) (*ShardServer, error) {
	return agent.StartShardServer(cfg)
}

// NewShardGather builds a scatter/gather client over a shard fleet. It
// satisfies NNIndex, so it plugs into NewLSHService and
// NewRecognitionCache directly.
func NewShardGather(cfg ShardGatherConfig) (*ShardGather, error) {
	return agent.NewShardGather(cfg)
}

// NewVideoSource creates the deterministic synthetic clip generator.
func NewVideoSource(cfg VideoConfig) *VideoSource { return trace.NewGenerator(cfg) }

// FramePayload renders frame i of the clip (wrapping at the end) and
// encodes it as the payload a client submits to the pipeline ingress.
func FramePayload(src *VideoSource, i int) []byte {
	img := src.GrayFrame(i % src.NumFrames())
	return (&core.Payload{Image: core.GrayToPayload(img)}).Encode()
}

// DecodeResult extracts the detections from a completed frame's payload.
func DecodeResult(payload []byte) ([]Detection, error) {
	p, err := core.DecodePayload(payload)
	if err != nil {
		return nil, err
	}
	return p.Detections, nil
}

// Real-mode runtime (UDP workers, sidecars, clients).
type (
	// Worker is a running service instance.
	Worker = agent.Worker
	// WorkerConfig configures a worker.
	WorkerConfig = agent.WorkerConfig
	// WorkerStats are a worker's counters (sidecar analytics).
	WorkerStats = agent.WorkerStats
	// Router resolves next-hop addresses.
	Router = agent.Router
	// StaticRouter is a fixed round-robin routing table.
	StaticRouter = agent.StaticRouter
	// StatsRouter picks replicas by live health windows
	// (power-of-two-choices over ack/loss EWMAs), falling back to the
	// StaticRouter order while windows are cold.
	StatsRouter = agent.StatsRouter
	// RouteStatsConfig tunes the routing windows (EWMA alpha, ack
	// timeout, health thresholds, probation).
	RouteStatsConfig = routestats.Config
	// RouteState is a replica's health state (healthy, degraded,
	// probation, ejected).
	RouteState = routestats.State
	// RouteDigest is the snapshot of one replica's routing window.
	RouteDigest = routestats.RouteDigest
	// ReplicaTelemetry is the per-replica route breakdown carried in
	// heartbeats and merged by the orchestrator's telemetry view.
	ReplicaTelemetry = orchestrator.ReplicaTelemetry
	// Client streams frames into a deployment.
	Client = agent.Client
	// ClientConfig configures a streaming client.
	ClientConfig = agent.ClientConfig
	// ClientResult is one processed frame observed by a client.
	ClientResult = agent.ClientResult
)

// StartWorker launches a real service worker.
func StartWorker(cfg WorkerConfig) (*Worker, error) { return agent.StartWorker(cfg) }

// StartClient launches a real streaming client.
func StartClient(cfg ClientConfig) (*Client, error) { return agent.StartClient(cfg) }

// NewStaticRouter builds a fixed routing table.
func NewStaticRouter(hops map[Step][]string) *StaticRouter { return agent.NewStaticRouter(hops) }

// Replica health states, ordered from best to worst.
const (
	RouteHealthy   = routestats.StateHealthy
	RouteDegraded  = routestats.StateDegraded
	RouteProbation = routestats.StateProbation
	RouteEjected   = routestats.StateEjected
)

// NewStatsRouter builds a stats-driven router over the same hops table a
// StaticRouter takes; zero-value cfg fields get defaults. Install it as a
// worker's Router and wire its Table's digest into the ObsRegistry via
// SetRouteSource to expose /routes.
func NewStatsRouter(hops map[Step][]string, cfg RouteStatsConfig) *StatsRouter {
	return agent.NewStatsRouter(hops, cfg)
}

// WriteRouteTable renders route digests as the human-readable table the
// /routes debug endpoint serves.
func WriteRouteTable(w io.Writer, digests []RouteDigest) { obs.WriteRouteTable(w, digests) }

// RPCStateFetcher connects matching to a remote sift's state store.
func RPCStateFetcher(addr string, timeout time.Duration) core.StateFetcher {
	return agent.RPCStateFetcher(addr, timeout)
}

// RPCStateFetcherContext is RPCStateFetcher with a caller-owned context:
// in-flight fetches abort when ctx is cancelled, not just on the per-call
// timeout.
func RPCStateFetcherContext(ctx context.Context, addr string, timeout time.Duration) core.StateFetcher {
	return agent.RPCStateFetcherContext(ctx, addr, timeout)
}

// ParseStep resolves a service name ("primary", "sift", ...) to its Step.
func ParseStep(name string) (Step, error) { return wire.ParseStep(name) }

// Fault injection and failure handling.
type (
	// Endpoint is a message transport (UDP or framed TCP).
	Endpoint = transport.Endpoint
	// FaultPolicy describes injected failures (drops, compounding
	// per-fragment loss, delay, jitter, duplication) on a link.
	FaultPolicy = transport.FaultPolicy
	// FaultyEndpoint wraps an Endpoint and injects a FaultPolicy per
	// destination peer, with togglable partitions — the real-socket
	// counterpart of the simulator's netem links.
	FaultyEndpoint = transport.FaultyEndpoint
	// FaultStats count injected failures.
	FaultStats = transport.FaultStats
	// TCPOptions tune the framed TCP endpoint's failure behaviour
	// (write deadlines, dial timeout, retry budget).
	TCPOptions = transport.TCPOptions
	// ConnStats are the UDP endpoint's cumulative receive-path counters
	// (reassemblies completed, expired, refused at the table bounds,
	// malformed fragments).
	ConnStats = transport.ConnStats
	// FramePool recycles Frame envelopes for the zero-allocation data
	// plane (see DESIGN.md "Buffer ownership & pooling").
	FramePool = wire.FramePool
	// BufPool recycles byte buffers for encode scratch and transport
	// reads; Put never allocates.
	BufPool = wire.BufPool
	// Deployer bridges orchestrator scheduling hooks to live workers and
	// keeps a StaticRouter in sync with the placement, so failure-driven
	// migrations reroute frames.
	Deployer = agent.Deployer
	// DeployerConfig configures a Deployer.
	DeployerConfig = agent.DeployerConfig
	// OrchestratorHooks notify the runtime about instance lifecycle
	// transitions.
	OrchestratorHooks = orchestrator.Hooks
	// Instance is one scheduled replica of a microservice.
	Instance = orchestrator.Instance
)

// NewFaultyEndpoint wraps inner with a default fault policy; seed fixes
// the injected fault pattern for reproducible chaos runs.
func NewFaultyEndpoint(inner Endpoint, def FaultPolicy, seed int64) *FaultyEndpoint {
	return transport.NewFaultyEndpoint(inner, def, seed)
}

// FaultPolicyFromLink converts a simulator link profile (e.g.
// LinkCloudWAN) into the equivalent real-socket fault policy.
func FaultPolicyFromLink(cfg LinkConfig) FaultPolicy { return transport.PolicyFromLink(cfg) }

// NewDeployer creates the orchestrator-to-runtime bridge.
func NewDeployer(cfg DeployerConfig) (*Deployer, error) { return agent.NewDeployer(cfg) }

// WithOrchestratorHooks installs lifecycle hooks on a root orchestrator
// (pass a Deployer's Hooks() to run real workers under orchestration).
func WithOrchestratorHooks(h OrchestratorHooks) orchestrator.Option {
	return orchestrator.WithHooks(h)
}

// WithHeartbeatTimeout overrides the root's failure-detection window.
func WithHeartbeatTimeout(d time.Duration) orchestrator.Option {
	return orchestrator.WithHeartbeatTimeout(d)
}

// Observability: per-frame spans, live metrics registry, exposition.
type (
	// ObsRegistry is the lock-free live metrics registry (counters,
	// gauges, latency histograms) workers and clients feed.
	ObsRegistry = obs.Registry
	// ServiceDigest is one service's live telemetry snapshot.
	ServiceDigest = obs.ServiceDigest
	// Span is one service's handling of one frame: queue-wait plus
	// processing segments and an outcome.
	Span = obs.Span
	// SpanRecorder is a bounded in-memory span sink.
	SpanRecorder = obs.Recorder
	// SpanRecord is the wire form of a span as carried on frames.
	SpanRecord = wire.SpanRecord
	// ServiceTelemetry is the per-service digest carried in heartbeats.
	ServiceTelemetry = orchestrator.ServiceTelemetry
)

// NewObsRegistry creates an empty live metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewSpanRecorder creates a bounded span sink (obs.DefaultMaxSpans when
// max is zero or negative).
func NewSpanRecorder(max int) *SpanRecorder { return obs.NewRecorder(max) }

// ObsHandler serves /metrics, /metrics.json, /healthz, /spans,
// /spans.trace, /debug/vars and /debug/pprof for a registry (rec may be
// nil to disable the span endpoints).
func ObsHandler(reg *ObsRegistry, rec *SpanRecorder) http.Handler {
	return obs.Handler(reg, rec)
}

// ServeObs starts an HTTP server exposing ObsHandler on addr (":0" picks
// an ephemeral port) and returns the server plus its bound address.
func ServeObs(addr string, reg *ObsRegistry, rec *SpanRecorder) (*http.Server, string, error) {
	return obs.Serve(addr, reg, rec)
}

// SpansFromWire converts the span records a result frame carried into
// exporter-ready spans.
func SpansFromWire(clientID uint32, frameNo uint64, recs []SpanRecord) []Span {
	return obs.FromWire(clientID, frameNo, recs)
}

// NormalizeSpans shifts span timestamps so the earliest enqueue is zero —
// use before exporting real-runtime spans, whose stamps are wall-clock.
func NormalizeSpans(spans []Span) []Span { return obs.Normalize(spans) }

// WriteChromeTrace renders spans as Chrome trace-event JSON loadable in
// Perfetto / chrome://tracing: hosts become processes, services threads,
// each frame a flow of queue and processing slices.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	return obs.WriteChromeTrace(w, spans)
}

// Orchestration.
type (
	// Orchestrator is the Oakestra-style root orchestrator.
	Orchestrator = orchestrator.Root
	// SLA is an application service-level agreement.
	SLA = orchestrator.SLA
	// ServiceSLA describes one microservice in an SLA.
	ServiceSLA = orchestrator.ServiceSLA
	// Requirements constrain placements.
	Requirements = orchestrator.Requirements
	// NodeInfo describes a worker node.
	NodeInfo = orchestrator.NodeInfo
	// NodeStatus is a node's hardware telemetry report.
	NodeStatus = orchestrator.NodeStatus
	// Deployment is a scheduling outcome.
	Deployment = orchestrator.Deployment
	// APIServer is the HTTP control plane.
	APIServer = orchestrator.APIServer
)

// NewOrchestrator creates a root orchestrator.
func NewOrchestrator(opts ...orchestrator.Option) *Orchestrator {
	return orchestrator.NewRoot(opts...)
}

// NewAPIServer wraps an orchestrator with the HTTP control plane.
func NewAPIServer(root *Orchestrator) *APIServer { return orchestrator.NewAPIServer(root) }

// NodeStatusAt builds an otherwise-empty telemetry report stamped at t —
// a heartbeat.
func NodeStatusAt(t time.Time) NodeStatus { return NodeStatus{LastHeartbeat: t} }

// Live app-aware autoscaling and admission control (the closed §6 loop).
type (
	// Autoscaler is the orchestrator-side control loop: each period it
	// windows the merged heartbeat telemetry into a policy signal, scales
	// distressed services through the scheduler, and escalates to
	// admission control when scale-out is capped or unschedulable.
	Autoscaler = orchestrator.Autoscaler
	// AutoscalerConfig parameterizes the control loop.
	AutoscalerConfig = orchestrator.AutoscalerConfig
	// AutoscaleEvent is one applied control action.
	AutoscaleEvent = orchestrator.AutoscaleEvent
	// AutoscaleDigest is the loop's status snapshot, served at
	// /api/v1/autoscaler and as scatter_autoscale_* on /metrics.
	AutoscaleDigest = obs.AutoscaleDigest
	// AdmissionDigest is a node's live sidecar-admission snapshot
	// (scatter_admission_* series).
	AdmissionDigest = obs.AdmissionDigest
	// ServiceAdmission is one service's admission verdict as carried on
	// heartbeat responses.
	ServiceAdmission = orchestrator.ServiceAdmission
	// HeartbeatResponse is the control plane's downlink: the verdicts a
	// node must enforce (absent services are admitted).
	HeartbeatResponse = orchestrator.HeartbeatResponse
	// AdmitState is a sidecar-ingress admission verdict.
	AdmitState = core.AdmitState
	// AppPolicy decides scaling from a windowed application signal.
	AppPolicy = appaware.Policy
	// HardwarePolicy scales on machine utilization thresholds alone —
	// the baseline the paper critiques.
	HardwarePolicy = appaware.HardwarePolicy
	// QoSPolicy scales on windowed per-service drop ratios and p95
	// service latency — the app-aware policy.
	QoSPolicy = appaware.QoSPolicy
	// AdmissionPolicy tunes the degrade/reject/recover hysteresis.
	AdmissionPolicy = appaware.AdmissionPolicy
	// AppSignal is the windowed per-period control signal policies see.
	AppSignal = appaware.Signal
)

// Admission verdicts, ordered by severity.
const (
	AdmitOK      = core.AdmitOK
	AdmitDegrade = core.AdmitDegrade
	AdmitReject  = core.AdmitReject
)

// DegradeStride is the ingress decimation under AdmitDegrade: one frame
// in DegradeStride is admitted, by frame number.
const DegradeStride = core.DegradeStride

// NewAutoscaler wires the live control loop over a root orchestrator;
// start it with Run or drive it directly with Tick.
func NewAutoscaler(root *Orchestrator, cfg AutoscalerConfig) *Autoscaler {
	return orchestrator.NewAutoscaler(root, cfg)
}

// WindowDelta converts a cumulative counter pair into one window's
// activity, saturating on counter resets.
func WindowDelta(cur, last uint64) uint64 { return appaware.WindowDelta(cur, last) }

// TelemetryFromDigests converts a node registry's live service digests
// into the heartbeat representation.
func TelemetryFromDigests(ds []ServiceDigest) []ServiceTelemetry {
	return orchestrator.TelemetryFromDigests(ds)
}

// Simulated testbed and experiments.
type (
	// World is a simulated instantiation of the paper's testbed.
	World = experiments.World
	// RunSpec describes one simulated run.
	RunSpec = experiments.RunSpec
	// RunPoint is a measured outcome.
	RunPoint = experiments.RunPoint
	// Report is a renderable experiment report.
	Report = experiments.Report
	// Summary is the QoS digest of a run.
	Summary = metrics.Summary
	// MachineConfig describes a simulated machine.
	MachineConfig = testbed.MachineConfig
	// LinkConfig describes an emulated network link.
	LinkConfig = netem.LinkConfig
	// HeadlineResult holds the paper's headline comparison scalars.
	HeadlineResult = experiments.HeadlineResult
)

// Placement assigns pipeline steps to machine replicas.
type Placement = core.Placement

// NewWorld builds the simulated E1/E2/cloud testbed.
func NewWorld(seed int64) *World { return experiments.NewWorld(seed) }

// RunExperiment executes one simulated run.
func RunExperiment(spec RunSpec) RunPoint { return experiments.Run(spec) }

// Placement builders for the paper's deployment configurations.
var (
	// PlacementC1 puts every service on E1.
	PlacementC1 = experiments.ConfigC1
	// PlacementC2 puts every service on E2.
	PlacementC2 = experiments.ConfigC2
	// PlacementC12 is [E1,E1,E2,E2,E2].
	PlacementC12 = experiments.ConfigC12
	// PlacementC21 is [E2,E2,E1,E1,E1].
	PlacementC21 = experiments.ConfigC21
	// PlacementCloud puts every service on the AWS VM.
	PlacementCloud = experiments.ConfigCloud
	// PlacementHybrid is [E1,C,C,C,C].
	PlacementHybrid = experiments.ConfigHybrid
	// PlacementScaled builds a replication vector on E2 with extra
	// replicas on E1, e.g. PlacementScaled([5]int{1,2,2,1,2}).
	PlacementScaled = experiments.ConfigScaled
)

// Experiment runners, one per paper figure. Each returns the measured
// points and a renderable report. Duration is the virtual run length per
// point (use experiments.DefaultDuration, 60 s, for CLI-grade numbers).
var (
	Fig2     = experiments.Fig2
	Fig3     = experiments.Fig3
	Fig4     = experiments.Fig4
	Fig6     = experiments.Fig6
	Fig7     = experiments.Fig7
	Fig9     = experiments.Fig9
	Fig10    = experiments.Fig10
	Fig11    = experiments.Fig11
	Headline = experiments.Headline
)

// AppAware runs the §6 future-work extension: autoscaling policies
// driven by hardware telemetry vs sidecar QoS analytics.
var AppAware = experiments.AppAware

// Fig8 regenerates the staged sidecar analytics on the scaled cluster.
func Fig8() (RunPoint, Report) { return experiments.Fig8() }

// Fig12 regenerates the staged sidecar analytics on E1.
func Fig12() (RunPoint, Report) { return experiments.Fig12() }

// DefaultDuration is the standard virtual run length per experiment point.
const DefaultDuration = experiments.DefaultDuration

// Testbed machine profiles from the paper (§3.2).
var (
	MachineE1    = testbed.E1
	MachineE2    = testbed.E2
	MachineCloud = testbed.Cloud
)

// Network profiles from the paper (§3.2, §A.1.1).
var (
	LinkLTE      = netem.LTE
	Link5G       = netem.FiveG
	LinkWiFi6    = netem.WiFi6
	LinkCloudWAN = netem.CloudWAN
	WithMobility = netem.WithMobility
)
