module github.com/edge-mar/scatter

go 1.24
